#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/transport.hpp"

/// Runtime protocol-invariant oracle.
///
/// Watches a running deployment (group events, transport events, periodic
/// role scans) and checks the safety properties the protocol is supposed to
/// provide, so chaos runs fail loudly at the moment an invariant breaks
/// instead of producing silently-wrong metrics:
///
///   1. At most one leader per context label per partition component —
///      transient dual leadership is legal while the id tiebreak / epoch
///      fence converges, so overlap only counts after a grace window.
///   2. Leadership-epoch monotonicity: nobody assumes leadership of a label
///      at an epoch below one the label was already led at (checked only
///      while the network is whole and the label's leadership is settled;
///      during a partition each side may legitimately run at its own
///      epoch, a radio-isolated elector cannot know better, and concurrent
///      takeovers under heartbeat loss spread differing epoch knowledge —
///      so checks resume one grace window after the last heal and one
///      churn window after the last high-water contest).
///   3. No duplicate delivery: the reliable transport never dispatches the
///      same (origin, label, seq) invocation twice on one node.
///   4. Bounded retransmission: no transfer is retransmitted more often
///      than its stack's configured retry budget.
///
/// Every violation captures a minimal trace — the most recent protocol
/// events — so a failing chaos run points at the offending interleaving.
namespace et::metrics {

struct InvariantConfig {
  /// Same-label leaders may coexist (takeover races, heal convergence) for
  /// up to this long before overlap is a violation. ~4 heartbeat periods.
  Duration leader_overlap_grace = Duration::seconds(2);
  /// Leadership scan period.
  Duration check_period = Duration::millis(100);
  /// Epoch-monotonicity checks stay suspended for this long after a
  /// partition heals (stale-epoch takeovers during convergence are the
  /// fence's job to clean up, not a bug).
  Duration heal_settle = Duration::seconds(2);
  /// A lower-epoch election within this window of the label's high-water
  /// epoch being raised (or re-contested at the same epoch) is concurrent
  /// takeover churn, not a regression: under heartbeat loss two members
  /// time out together with different epoch knowledge, both elect, and the
  /// duel resolves them. Covers a receive timeout (2.1 x heartbeat) plus a
  /// couple of loss bursts. A *stale-incarnation resurrection* — the real
  /// bug — elects long after the winning side moved on, well outside this.
  Duration epoch_churn_window = Duration::seconds(3);
  /// Protocol events retained for violation traces.
  std::size_t trace_depth = 16;
};

struct InvariantViolation {
  enum class Kind {
    kDualLeader,
    kEpochRegression,
    kDuplicateDelivery,
    kRetryBudgetExceeded,
  };

  Kind kind;
  Time time;
  core::TypeIndex type_index = 0;
  LabelId label;
  std::string detail;
  /// The most recent protocol events leading up to the violation.
  std::vector<std::string> trace;

  std::string to_string() const;
};

const char* invariant_kind_name(InvariantViolation::Kind kind);

class InvariantOracle final : public core::GroupObserver {
 public:
  /// Attaches to a *started* system: subscribes to group events on every
  /// mote, to transport events on every stack that has a transport, and
  /// arms the periodic leadership scan.
  InvariantOracle(core::EnviroTrackSystem& system, InvariantConfig config = {});

  InvariantOracle(const InvariantOracle&) = delete;
  InvariantOracle& operator=(const InvariantOracle&) = delete;

  void on_group_event(const core::GroupEvent& event) override;
  void on_transport_event(NodeId node, const core::TransportEvent& event);

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  std::uint64_t checks_run() const { return checks_run_; }

  /// Human-readable summary of every violation with its trace; "all
  /// invariants held" when clean.
  std::string report() const;

 private:
  void scan_leaders();
  void record(InvariantViolation::Kind kind, core::TypeIndex type,
              LabelId label, std::string detail);
  void push_trace(std::string line);

  core::EnviroTrackSystem& system_;
  InvariantConfig config_;
  sim::EventHandle scan_timer_;

  /// (type, label) pairs currently in dual leadership, with overlap start.
  std::map<std::pair<core::TypeIndex, std::uint64_t>, Time> dual_since_;
  /// Highest epoch each label has been led at (invariant 2), and when that
  /// high water was last raised or re-contested (the churn window anchor).
  struct EpochWatermark {
    std::uint64_t epoch = 0;
    Time contested_at;
  };
  std::map<std::uint64_t, EpochWatermark> max_epoch_;
  /// Exact (receiver, origin, label, seq) tuples delivered (invariant 3).
  std::set<std::array<std::uint64_t, 4>> delivered_;
  /// Most recent heal; epoch checks resume heal_settle later.
  Time last_heal_;
  bool heal_seen_ = false;
  bool was_partitioned_ = false;

  std::deque<std::string> trace_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t checks_run_ = 0;
};

}  // namespace et::metrics
