#include "metrics/energy.hpp"

namespace et::metrics {

EnergyReport measure_energy(core::EnviroTrackSystem& system,
                            const EnergyModel& model) {
  EnergyReport report;
  report.per_node.reserve(system.node_count());
  const double elapsed = system.sim().now().to_seconds();

  for (std::size_t i = 0; i < system.node_count(); ++i) {
    const NodeId id{i};
    const auto& radio = system.medium().endpoint_stats(id);
    const auto& cpu = system.network().mote(id).cpu().stats();

    NodeEnergy energy;
    energy.tx_joules =
        static_cast<double>(radio.bits_sent) * model.tx_joules_per_bit;
    energy.rx_joules =
        static_cast<double>(radio.bits_received) * model.rx_joules_per_bit;
    energy.cpu_joules = cpu.busy.to_seconds() * model.cpu_active_watts;
    // Listening is charged only while the receiver was actually powered;
    // duty cycling shows up here.
    const double listen_seconds =
        elapsed - system.medium().radio_off_total(id).to_seconds();
    energy.listen_joules =
        std::max(listen_seconds, 0.0) * model.listen_watts;
    energy.idle_joules = elapsed * model.idle_watts;

    report.totals.tx_joules += energy.tx_joules;
    report.totals.rx_joules += energy.rx_joules;
    report.totals.cpu_joules += energy.cpu_joules;
    report.totals.listen_joules += energy.listen_joules;
    report.totals.idle_joules += energy.idle_joules;
    report.per_node.push_back(energy);
  }
  return report;
}

}  // namespace et::metrics
