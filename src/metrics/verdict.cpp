#include "metrics/verdict.hpp"

#include <algorithm>

namespace et::metrics {

void ChaosVerdict::note_ran(const std::string& oracle) {
  if (std::find(oracles_run_.begin(), oracles_run_.end(), oracle) ==
      oracles_run_.end()) {
    oracles_run_.push_back(oracle);
  }
}

void ChaosVerdict::pass(std::string oracle) { note_ran(oracle); }

void ChaosVerdict::fail(std::string oracle, std::string detail,
                        double at_seconds) {
  note_ran(oracle);
  failures_.push_back(
      OracleFinding{std::move(oracle), std::move(detail), at_seconds});
}

void ChaosVerdict::merge(const ChaosVerdict& other,
                         const std::string& prefix) {
  for (const std::string& oracle : other.oracles_run_) {
    note_ran(prefix + "/" + oracle);
  }
  for (const OracleFinding& finding : other.failures_) {
    failures_.push_back(OracleFinding{prefix + "/" + finding.oracle,
                                      finding.detail, finding.at_seconds});
  }
}

util::Json ChaosVerdict::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("ok", ok());
  util::Json ran = util::Json::array();
  for (const std::string& oracle : oracles_run_) ran.push_back(oracle);
  doc.set("oracles_run", std::move(ran));
  util::Json fails = util::Json::array();
  for (const OracleFinding& finding : failures_) {
    util::Json f = util::Json::object();
    f.set("oracle", finding.oracle);
    f.set("detail", finding.detail);
    f.set("at_seconds", finding.at_seconds);
    fails.push_back(std::move(f));
  }
  doc.set("failures", std::move(fails));
  return doc;
}

std::string ChaosVerdict::summary() const {
  if (ok()) {
    return "ok (" + std::to_string(oracles_run_.size()) + " oracles)";
  }
  const OracleFinding& first = failures_.front();
  std::string out = "FAIL " + first.oracle + ": " + first.detail;
  if (failures_.size() > 1) {
    out += " (+" + std::to_string(failures_.size() - 1) + " more)";
  }
  return out;
}

}  // namespace et::metrics
