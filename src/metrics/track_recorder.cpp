#include "metrics/track_recorder.hpp"

#include <limits>

namespace et::metrics {

TrackRecorder::TrackRecorder(core::EnviroTrackSystem& system,
                             NodeId base_station, TargetId target,
                             std::string expected_tag)
    : system_(system), target_(target), tag_(std::move(expected_tag)) {
  system_.stack(base_station)
      .on_user_message([this](const core::UserMessagePayload& msg, NodeId) {
        // Ambient time: this handler runs in mote context, which under the
        // parallel kernel executes on the base station's tile engine.
        const Time now = sim::Simulator::ambient_now(system_.sim());
        const auto decoded = decode_track_report(msg, tag_, now);
        if (!decoded) return;
        if (!fence_.admit(decoded->label, decoded->epoch)) return;
        const Vec2 actual =
            system_.environment().target(target_).position_at(now);
        labels_.emplace(decoded->label, true);
        points_.push_back(TrackPoint{now, decoded->label, decoded->position,
                                     actual,
                                     distance(decoded->position, actual)});
      });
}

double TrackRecorder::mean_error() const {
  if (points_.empty()) return std::numeric_limits<double>::quiet_NaN();
  double sum = 0.0;
  for (const TrackPoint& p : points_) sum += p.error;
  return sum / static_cast<double>(points_.size());
}

double TrackRecorder::max_error() const {
  if (points_.empty()) return std::numeric_limits<double>::quiet_NaN();
  double m = 0.0;
  for (const TrackPoint& p : points_) m = std::max(m, p.error);
  return m;
}

}  // namespace et::metrics
