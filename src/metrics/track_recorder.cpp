#include "metrics/track_recorder.hpp"

namespace et::metrics {

TrackRecorder::TrackRecorder(core::EnviroTrackSystem& system,
                             NodeId base_station, TargetId target,
                             std::string expected_tag)
    : system_(system), target_(target), tag_(std::move(expected_tag)) {
  system_.stack(base_station)
      .on_user_message([this](const core::UserMessagePayload& msg, NodeId) {
        if (msg.tag != tag_ || msg.data.size() < 2) return;
        // Epoch fence: a stale leader (fenced after a partition heal) may
        // still have reports in flight; once a higher-epoch report for the
        // label has arrived, discard anything older.
        auto [eit, first] = highest_epoch_.try_emplace(msg.src_label,
                                                       msg.epoch);
        if (!first) {
          if (msg.epoch < eit->second) {
            stale_discarded_++;
            return;
          }
          eit->second = std::max(eit->second, msg.epoch);
        }
        // Ambient time: this handler runs in mote context, which under the
        // parallel kernel executes on the base station's tile engine.
        const Time now = sim::Simulator::ambient_now(system_.sim());
        const Vec2 reported{msg.data[0], msg.data[1]};
        const Vec2 actual =
            system_.environment().target(target_).position_at(now);
        labels_.emplace(msg.src_label, true);
        points_.push_back(TrackPoint{now, msg.src_label, reported, actual,
                                     distance(reported, actual)});
      });
}

double TrackRecorder::mean_error() const {
  if (points_.empty()) return 0.0;
  double sum = 0.0;
  for (const TrackPoint& p : points_) sum += p.error;
  return sum / static_cast<double>(points_.size());
}

double TrackRecorder::max_error() const {
  double m = 0.0;
  for (const TrackPoint& p : points_) m = std::max(m, p.error);
  return m;
}

}  // namespace et::metrics
