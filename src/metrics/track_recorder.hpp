#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/app_messages.hpp"
#include "core/system.hpp"
#include "metrics/track_decode.hpp"

/// Base-station track recording (Fig. 3).
///
/// Plays the role of the paper's pursuer laptop: installs itself as a
/// kUser message consumer on one mote, interprets "track" reports (x, y
/// from the `location` aggregate; shared decoder in track_decode.hpp) and
/// logs them against the ground-truth target position at the moment each
/// report arrives.
namespace et::metrics {

struct TrackPoint {
  Time time;
  LabelId label;
  Vec2 reported;
  Vec2 actual;  // ground-truth position of the associated target
  double error;
};

class TrackRecorder {
 public:
  /// Attaches to `base_station`'s middleware stack. Reports are matched to
  /// ground truth against `target` of the environment.
  TrackRecorder(core::EnviroTrackSystem& system, NodeId base_station,
                TargetId target, std::string expected_tag = "track");

  const std::vector<TrackPoint>& points() const { return points_; }
  std::size_t report_count() const { return points_.size(); }

  /// Labels seen across all received reports (coherence check from the
  /// application's perspective: should be 1 for a single target).
  std::size_t distinct_labels() const { return labels_.size(); }

  /// Mean/max distance between reported and ground-truth positions. NaN
  /// when no report ever arrived: a run where tracking failed completely
  /// must not score as a perfect (zero-error) one.
  double mean_error() const;
  double max_error() const;

  /// Reports discarded because they carried a leadership epoch lower than
  /// the highest already seen for their label (stale pre-partition leader).
  std::uint64_t stale_discarded() const { return fence_.stale_discarded(); }

 private:
  core::EnviroTrackSystem& system_;
  TargetId target_;
  std::string tag_;
  std::vector<TrackPoint> points_;
  std::unordered_map<LabelId, bool> labels_;
  EpochFence fence_;
};

}  // namespace et::metrics
