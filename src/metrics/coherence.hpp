#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/system.hpp"

/// Ground-truth coherence monitoring.
///
/// The paper's central correctness property is *context label coherence*: a
/// group of sensors identifying the same entity should maintain one single,
/// persistent context label (§5.2). This monitor samples the deployment
/// periodically, associates every live leader with the physical target its
/// mote senses, and scores each leadership transition as a *successful
/// handover* (same label, new leader — Fig. 4's success case) or a *failed
/// handover* (a fresh label spawned for a target that already had one).
namespace et::metrics {

struct TargetTrackingStats {
  /// Leadership moved to another node under the same label.
  std::uint64_t successful_handovers = 0;
  /// A new label replaced the previous one for this target.
  std::uint64_t failed_handovers = 0;
  /// Distinct labels ever associated with the target.
  std::uint64_t distinct_labels = 0;
  /// Samples where >= 2 concurrent labels tracked the target.
  std::uint64_t replicated_samples = 0;
  /// Samples with at least one associated leader.
  std::uint64_t tracked_samples = 0;
  std::uint64_t total_samples = 0;
  /// Time from the target's appearance to its first established claim
  /// (negative while undetected). The price of duty cycling and of large
  /// creation delays shows up here.
  Duration detection_latency = Duration::micros(-1);

  bool detected() const { return !detection_latency.is_negative(); }

  double handover_success_rate() const {
    const std::uint64_t transitions =
        successful_handovers + failed_handovers;
    return transitions == 0
               ? 1.0
               : static_cast<double>(successful_handovers) /
                     static_cast<double>(transitions);
  }
  double tracked_fraction() const {
    return total_samples == 0 ? 0.0
                              : static_cast<double>(tracked_samples) /
                                    static_cast<double>(total_samples);
  }
  /// The paper's "single group abstraction maintained" criterion used in
  /// the maximum-trackable-speed stress tests (§6.2).
  bool coherent() const { return distinct_labels <= 1; }
};

class CoherenceMonitor {
 public:
  /// Starts sampling `system` every `sample_period`. The monitor must
  /// outlive the run; `system` must already be started. Only *established*
  /// labels — leader weight >= `min_claim_weight` — count toward coherence,
  /// mirroring the paper's observation that spurious leaders "are unlikely
  /// to gather critical mass and hence will not affect system behavior".
  CoherenceMonitor(core::EnviroTrackSystem& system, Duration sample_period,
                   std::uint64_t min_claim_weight = 1);

  CoherenceMonitor(const CoherenceMonitor&) = delete;
  CoherenceMonitor& operator=(const CoherenceMonitor&) = delete;

  const TargetTrackingStats& stats_for(TargetId target) const;

  /// Aggregate over all targets.
  TargetTrackingStats combined() const;

  /// Convenience: coherence held for every target all run long.
  bool all_coherent() const;

  /// Takes one sample immediately (also called by the periodic schedule).
  void sample();

 private:
  struct PerTarget {
    TargetTrackingStats stats;
    LabelId current_label;
    NodeId current_leader;
    std::unordered_map<LabelId, bool> labels_seen;
  };

  core::EnviroTrackSystem& system_;
  std::uint64_t min_claim_weight_;
  mutable std::unordered_map<TargetId, PerTarget> targets_;
  sim::EventHandle tick_;
};

}  // namespace et::metrics
