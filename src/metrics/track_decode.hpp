#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "core/app_messages.hpp"
#include "util/geometry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

/// Shared interpretation of MTP `track` reports.
///
/// Two consumers sit behind the base station — the TrackRecorder (Fig. 3
/// instrumentation) and the serving tier's ingest path (src/serve) — and
/// both must read the wire format and apply the leadership-epoch fence the
/// same way. This header is the single place that knows a "track" report
/// is `{tag, src_label, epoch, data = [x, y]}`.
namespace et::metrics {

/// One decoded track report, stamped with the receive time.
struct DecodedTrack {
  Time time;
  LabelId label;
  NodeId source;  // leader that sent the report
  Vec2 position;
  std::uint64_t epoch = 0;
};

/// Interprets `msg` as a track report. Returns nullopt when the tag does
/// not match or the payload is too short to carry a position.
std::optional<DecodedTrack> decode_track_report(
    const core::UserMessagePayload& msg, std::string_view expected_tag,
    Time now);

/// Per-label leadership-epoch fence: a stale leader (fenced after a
/// partition heal) may still have reports in flight; once a higher-epoch
/// report for a label has arrived, anything older is discarded. The first
/// report of a label always passes and seeds the high-water mark.
class EpochFence {
 public:
  /// Returns true when the report should be accepted; false marks it stale
  /// (and counts it). Advances the label's high-water mark on acceptance.
  bool admit(LabelId label, std::uint64_t epoch) {
    auto [it, first] = highest_.try_emplace(label, epoch);
    if (!first) {
      if (epoch < it->second) {
        stale_discarded_++;
        return false;
      }
      it->second = epoch;
    }
    return true;
  }

  std::uint64_t stale_discarded() const { return stale_discarded_; }
  void clear() {
    highest_.clear();
    stale_discarded_ = 0;
  }

 private:
  std::unordered_map<LabelId, std::uint64_t> highest_;
  std::uint64_t stale_discarded_ = 0;
};

}  // namespace et::metrics
