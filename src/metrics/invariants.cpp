#include "metrics/invariants.hpp"

#include "util/log.hpp"

namespace et::metrics {

namespace {
constexpr const char* kComponent = "invariants";
}

const char* invariant_kind_name(InvariantViolation::Kind kind) {
  switch (kind) {
    case InvariantViolation::Kind::kDualLeader:
      return "dual-leader";
    case InvariantViolation::Kind::kEpochRegression:
      return "epoch-regression";
    case InvariantViolation::Kind::kDuplicateDelivery:
      return "duplicate-delivery";
    case InvariantViolation::Kind::kRetryBudgetExceeded:
      return "retry-budget-exceeded";
  }
  return "?";
}

std::string InvariantViolation::to_string() const {
  std::string s = time.to_string();
  s += " INVARIANT ";
  s += invariant_kind_name(kind);
  s += " label ";
  s += label.to_string();
  s += ": ";
  s += detail;
  return s;
}

InvariantOracle::InvariantOracle(core::EnviroTrackSystem& system,
                                 InvariantConfig config)
    : system_(system), config_(config) {
  system_.add_group_observer(this);
  // Routed through the system so transport events are journaled into
  // canonical order (and onto the master thread) under the parallel kernel,
  // exactly like group events.
  system_.add_transport_listener(
      [this](NodeId node, const core::TransportEvent& event) {
        on_transport_event(node, event);
      });
  scan_timer_ = system_.sim().schedule_periodic(
      config_.check_period, config_.check_period, [this] { scan_leaders(); });
}

void InvariantOracle::push_trace(std::string line) {
  trace_.push_back(std::move(line));
  while (trace_.size() > config_.trace_depth) trace_.pop_front();
}

void InvariantOracle::record(InvariantViolation::Kind kind,
                             core::TypeIndex type, LabelId label,
                             std::string detail) {
  InvariantViolation violation;
  violation.kind = kind;
  violation.time = system_.sim().now();
  violation.type_index = type;
  violation.label = label;
  violation.detail = std::move(detail);
  violation.trace.assign(trace_.begin(), trace_.end());
  ET_WARN(kComponent, "%s", violation.to_string().c_str());
  violations_.push_back(std::move(violation));
}

void InvariantOracle::on_group_event(const core::GroupEvent& event) {
  push_trace(event.to_string());

  if (event.kind != core::GroupEvent::Kind::kBecameLeader) return;
  const std::uint64_t label = event.label.value();
  const Time now = system_.sim().now();
  auto [it, first] =
      max_epoch_.try_emplace(label, EpochWatermark{event.epoch, now});
  if (first) return;
  if (event.epoch < it->second.epoch) {
    // A lower-epoch election is legal while the label's leadership is
    // genuinely in flux: during a split (each side runs its own epoch
    // line), while the fence converges after a heal, while the electing
    // node is radio-isolated (it cannot have heard the newer incarnation),
    // and inside the churn window of the last high-water contest (two
    // members timing out together under heartbeat loss elect with
    // different epoch knowledge; the duel resolves them). Only a stale
    // election on a settled, connected network is a regression.
    const bool settling =
        system_.medium().partitioned() ||
        (heal_seen_ && now - last_heal_ < config_.heal_settle) ||
        system_.medium().node_blackout(event.node) ||
        now - it->second.contested_at < config_.epoch_churn_window;
    if (!settling) {
      std::string detail = "node ";
      detail += std::to_string(event.node.value());
      detail += " assumed leadership at epoch ";
      detail += std::to_string(event.epoch);
      detail += " below the label's high-water epoch ";
      detail += std::to_string(it->second.epoch);
      record(InvariantViolation::Kind::kEpochRegression, event.type_index,
             event.label, std::move(detail));
    }
  } else {
    // Raised or re-contested at the high water: re-anchor the churn
    // window — concurrent takeovers cluster around these moments.
    it->second.epoch = event.epoch;
    it->second.contested_at = now;
  }
}

void InvariantOracle::on_transport_event(NodeId node,
                                         const core::TransportEvent& event) {
  std::string line = event.time.to_string();
  line += " node ";
  line += std::to_string(node.value());
  line += " mtp-";
  line += core::transport_event_kind_name(event.kind);
  line += " label ";
  line += event.dst_label.to_string();
  line += " seq ";
  line += std::to_string(event.seq);
  push_trace(std::move(line));

  switch (event.kind) {
    case core::TransportEvent::Kind::kDelivered: {
      const std::array<std::uint64_t, 4> key{
          node.value(), event.origin.value(), event.dst_label.value(),
          event.seq};
      // Fire-and-forget sends all carry seq 0 and make no uniqueness
      // promise; only reliable transfers (nonzero seq) are checked.
      if (event.seq == 0) break;
      if (!delivered_.insert(key).second) {
        std::string detail = "node ";
        detail += std::to_string(node.value());
        detail += " dispatched transfer (origin ";
        detail += std::to_string(event.origin.value());
        detail += ", seq ";
        detail += std::to_string(event.seq);
        detail += ") twice";
        record(InvariantViolation::Kind::kDuplicateDelivery, 0,
               event.dst_label, std::move(detail));
      }
      break;
    }
    case core::TransportEvent::Kind::kRetransmit: {
      const int budget =
          system_.stack(node).transport()->config().max_retries;
      if (event.attempt > budget) {
        std::string detail = "transfer seq ";
        detail += std::to_string(event.seq);
        detail += " retransmitted ";
        detail += std::to_string(event.attempt);
        detail += " times against a budget of ";
        detail += std::to_string(budget);
        record(InvariantViolation::Kind::kRetryBudgetExceeded, 0,
               event.dst_label, std::move(detail));
      }
      break;
    }
    default:
      break;
  }
}

void InvariantOracle::scan_leaders() {
  checks_run_++;
  radio::Medium& medium = system_.medium();
  const Time now = system_.sim().now();

  const bool parted = medium.partitioned();
  if (was_partitioned_ && !parted) {
    heal_seen_ = true;
    last_heal_ = now;
  }
  was_partitioned_ = parted;

  // All current leaders, grouped by (type, label).
  std::map<std::pair<core::TypeIndex, std::uint64_t>,
           std::vector<NodeId>>
      leaders;
  for (std::size_t i = 0; i < system_.node_count(); ++i) {
    const NodeId node{i};
    core::GroupManager& groups = system_.stack(node).groups();
    for (std::size_t t = 0; t < groups.type_count(); ++t) {
      const auto type = static_cast<core::TypeIndex>(t);
      if (groups.role(type) != core::Role::kLeader) continue;
      leaders[{type, groups.current_label(type).value()}].push_back(node);
    }
  }

  std::set<std::pair<core::TypeIndex, std::uint64_t>> dual_now;
  for (const auto& [key, nodes] : leaders) {
    if (nodes.size() < 2) continue;
    // Leaders isolated from each other are expected; only mutually
    // reachable ones must converge. Isolation means a partition boundary
    // or a radio blackout on either side — a blacked-out leader cannot
    // hear its rival's heartbeats any more than a partitioned one can, so
    // its overlap clock starts when the RF outage ends, not before.
    bool overlap = false;
    for (std::size_t a = 0; a < nodes.size() && !overlap; ++a) {
      if (medium.node_blackout(nodes[a])) continue;
      for (std::size_t b = a + 1; b < nodes.size(); ++b) {
        if (medium.node_blackout(nodes[b])) continue;
        if (medium.same_partition(nodes[a], nodes[b])) {
          overlap = true;
          break;
        }
      }
    }
    if (!overlap) continue;
    dual_now.insert(key);
    auto [it, first] = dual_since_.try_emplace(key, now);
    if (!first && now - it->second >= config_.leader_overlap_grace) {
      std::string detail = "nodes";
      for (NodeId node : nodes) {
        detail += ' ';
        detail += std::to_string(node.value());
        detail += "(epoch ";
        detail +=
            std::to_string(system_.stack(node).groups().current_epoch(
                key.first));
        detail += ", comp ";
        detail += std::to_string(medium.partition_component(node));
        detail += ')';
      }
      detail += " co-led past the grace window";
      record(InvariantViolation::Kind::kDualLeader, key.first,
             LabelId{key.second}, std::move(detail));
      it->second = now;  // re-arm: flag again only after another full window
    }
  }
  // Labels that converged reset their overlap clock.
  for (auto it = dual_since_.begin(); it != dual_since_.end();) {
    if (dual_now.count(it->first) == 0) {
      it = dual_since_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string InvariantOracle::report() const {
  if (violations_.empty()) {
    return "invariant oracle: all invariants held (" +
           std::to_string(checks_run_) + " scans)";
  }
  std::string out = "invariant oracle: ";
  out += std::to_string(violations_.size());
  out += " violation(s)\n";
  for (const InvariantViolation& violation : violations_) {
    out += violation.to_string();
    out += '\n';
    for (const std::string& line : violation.trace) {
      out += "    | ";
      out += line;
      out += '\n';
    }
  }
  return out;
}

}  // namespace et::metrics
