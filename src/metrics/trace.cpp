#include "metrics/trace.hpp"

#include <cassert>
#include <cstdarg>
#include <cstdio>

#include "util/log.hpp"

namespace et::metrics {

namespace {

void append_row(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_row(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string track_csv(const std::vector<TrackPoint>& points) {
  std::string out =
      "time_s,label,reported_x,reported_y,actual_x,actual_y,error\n";
  for (const TrackPoint& p : points) {
    append_row(out, "%.3f,%llu,%.4f,%.4f,%.4f,%.4f,%.4f\n",
               p.time.to_seconds(),
               static_cast<unsigned long long>(p.label.value()),
               p.reported.x, p.reported.y, p.actual.x, p.actual.y, p.error);
  }
  return out;
}

std::string events_csv(const std::vector<core::GroupEvent>& events) {
  std::string out = "time_s,node,kind,label,peer,weight\n";
  for (const core::GroupEvent& e : events) {
    append_row(out, "%.3f,%llu,%s,%llu,%llu,%llu\n", e.time.to_seconds(),
               static_cast<unsigned long long>(e.node.value()),
               core::group_event_kind_name(e.kind),
               static_cast<unsigned long long>(e.label.value()),
               static_cast<unsigned long long>(e.peer.value()),
               static_cast<unsigned long long>(e.weight));
  }
  return out;
}

std::string series_csv(const std::string& x_name,
                       const std::vector<double>& xs,
                       const std::vector<Series>& series) {
  std::string out = x_name;
  for (const Series& s : series) {
    assert(s.values.size() == xs.size());
    out += ",";
    out += s.name;
  }
  out += "\n";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    append_row(out, "%.6g", xs[i]);
    for (const Series& s : series) {
      append_row(out, ",%.6g", s.values[i]);
    }
    out += "\n";
  }
  return out;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (!file) {
    ET_WARN("trace", "cannot open '%s' for writing", path.c_str());
    return false;
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), file);
  std::fclose(file);
  if (written != contents.size()) {
    ET_WARN("trace", "short write to '%s'", path.c_str());
    return false;
  }
  return true;
}

}  // namespace et::metrics
