#include "metrics/recovery.hpp"

#include <algorithm>

namespace et::metrics {

RecoveryMonitor::RecoveryMonitor(core::EnviroTrackSystem& system,
                                 fault::FaultInjector& injector,
                                 Duration sample_period)
    : system_(system), sample_period_(sample_period) {
  system_.add_group_observer(this);
  injector.add_listener(
      [this](const fault::FaultRecord& record) { on_fault(record); });
  tick_ = system_.sim().schedule_periodic(sample_period, sample_period,
                                          [this] { sample(); });
}

void RecoveryMonitor::on_fault(const fault::FaultRecord& record) {
  if (record.kind != fault::FaultKind::kCrash || !record.was_leader) return;
  stats_.leader_faults++;
  open_.push_back(OpenGap{record.at, record.type_index, record.label});
}

void RecoveryMonitor::on_group_event(const core::GroupEvent& event) {
  if (event.kind != core::GroupEvent::Kind::kBecameLeader) return;
  // Close the gap this takeover actually answers. Prefer an exact label
  // match: with several simultaneously crashed leaders of the same context
  // type (the multi-target regime), a takeover that kept target B's label
  // must not close target A's gap — that cross-pairing corrupts both the
  // takeover-time and the label-continuity statistics. Only when no open
  // gap carries the event's label (the takeover minted or adopted a new
  // label) fall back to the oldest gap of the type: whoever leads the type
  // again has re-assumed a crashed leader's tracking responsibility.
  auto it = std::find_if(open_.begin(), open_.end(),
                         [&](const OpenGap& gap) {
                           return gap.type == event.type_index &&
                                  gap.label == event.label;
                         });
  if (it == open_.end()) {
    it = std::find_if(open_.begin(), open_.end(),
                      [&](const OpenGap& gap) {
                        return gap.type == event.type_index;
                      });
  }
  if (it == open_.end()) return;
  const Duration takeover = event.time - it->opened;
  stats_.recoveries++;
  stats_.total_takeover += takeover;
  stats_.max_takeover = std::max(stats_.max_takeover, takeover);
  if (event.label == it->label) {
    stats_.label_preserved++;
  } else {
    stats_.label_replaced++;
  }
  open_.erase(it);
}

void RecoveryMonitor::sample() {
  const Time now = system_.sim().now();
  const auto& specs = system_.specs();

  // A target counts as tracked when some alive leader of its context type
  // is close enough to sense it — the coherence monitor's association rule
  // minus the weight gate (a fresh takeover with zero absorbed reports
  // still counts as coverage).
  bool any_exposed = false;
  bool all_covered = true;
  for (std::size_t t = 0; t < specs.size(); ++t) {
    const auto type = static_cast<core::TypeIndex>(t);
    for (TargetId tid :
         system_.environment().active_targets_of(specs[t].name, now)) {
      any_exposed = true;
      const env::Target& target = system_.environment().target(tid);
      const Vec2 target_pos = target.position_at(now);
      const double radius = target.radius_at(now);
      bool covered = false;
      for (std::size_t n = 0; n < system_.node_count(); ++n) {
        const NodeId node{n};
        auto& groups = system_.stack(node).groups();
        if (!groups.alive() || groups.role(type) != core::Role::kLeader) {
          continue;
        }
        const Vec2 pos = system_.network().mote(node).position();
        if (distance(pos, target_pos) <= radius) {
          covered = true;
          break;
        }
      }
      if (!covered) all_covered = false;
    }
  }
  if (!any_exposed) return;
  stats_.exposed_samples++;
  if (all_covered) stats_.tracked_samples++;
}

}  // namespace et::metrics
