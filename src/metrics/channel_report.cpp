#include "metrics/channel_report.hpp"

#include <cstdio>

namespace et::metrics {

std::string ChannelReport::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "HB loss %.2f%%  Msg loss %.2f%%  Link util %.2f%%",
                heartbeat_loss_pct, report_loss_pct, link_utilization_pct);
  return buf;
}

}  // namespace et::metrics
