#include "metrics/coherence.hpp"

#include <algorithm>
#include <limits>

namespace et::metrics {

CoherenceMonitor::CoherenceMonitor(core::EnviroTrackSystem& system,
                                   Duration sample_period,
                                   std::uint64_t min_claim_weight)
    : system_(system), min_claim_weight_(min_claim_weight) {
  tick_ = system_.sim().schedule_periodic(sample_period, sample_period,
                                          [this] { sample(); });
}

void CoherenceMonitor::sample() {
  const Time now = system_.sim().now();
  const auto& specs = system_.specs();

  struct Claim {
    LabelId label;
    NodeId leader;
    std::uint64_t weight;
  };
  std::unordered_map<TargetId, std::vector<Claim>> claims;

  // Associate every live leader with the nearest physical target of its
  // context type that its mote actually senses.
  for (std::size_t n = 0; n < system_.node_count(); ++n) {
    const NodeId node{n};
    auto& groups = system_.stack(node).groups();
    if (!groups.alive()) continue;
    const Vec2 pos = system_.network().mote(node).position();
    for (std::size_t t = 0; t < specs.size(); ++t) {
      const auto type = static_cast<core::TypeIndex>(t);
      if (groups.role(type) != core::Role::kLeader) continue;

      std::optional<TargetId> best;
      double best_d = std::numeric_limits<double>::max();
      for (TargetId tid :
           system_.environment().active_targets_of(specs[t].name, now)) {
        const env::Target& target = system_.environment().target(tid);
        const double d = distance(pos, target.position_at(now));
        if (d <= target.radius_at(now) && d < best_d) {
          best_d = d;
          best = tid;
        }
      }
      if (best && groups.leader_weight(type) >= min_claim_weight_) {
        claims[*best].push_back(Claim{groups.current_label(type), node,
                                      groups.leader_weight(type)});
      }
    }
  }

  // Score each active target's sample.
  for (TargetId tid : system_.environment().active_targets(now)) {
    PerTarget& pt = targets_[tid];
    pt.stats.total_samples++;
    auto it = claims.find(tid);
    if (it == claims.end()) continue;  // untracked gap (e.g. mid-takeover)
    const std::vector<Claim>& live = it->second;
    pt.stats.tracked_samples++;
    if (!pt.stats.detected()) {
      pt.stats.detection_latency =
          now - system_.environment().target(tid).appears;
    }

    // Count distinct labels alive for this target right now.
    std::vector<LabelId> labels;
    for (const Claim& c : live) {
      if (std::find(labels.begin(), labels.end(), c.label) == labels.end()) {
        labels.push_back(c.label);
      }
      if (pt.labels_seen.emplace(c.label, true).second) {
        pt.stats.distinct_labels++;
      }
    }
    if (labels.size() >= 2) pt.stats.replicated_samples++;

    // Transition scoring against the previously associated label.
    const Claim* continuing = nullptr;
    for (const Claim& c : live) {
      if (c.label == pt.current_label) {
        continuing = &c;
        break;
      }
    }
    if (continuing) {
      if (pt.current_leader.is_valid() &&
          continuing->leader != pt.current_leader) {
        pt.stats.successful_handovers++;
      }
      pt.current_leader = continuing->leader;
    } else {
      // The previous label vanished; a new one owns the target.
      const Claim* heaviest = &live.front();
      for (const Claim& c : live) {
        if (c.weight > heaviest->weight) heaviest = &c;
      }
      if (pt.current_label.is_valid()) pt.stats.failed_handovers++;
      pt.current_label = heaviest->label;
      pt.current_leader = heaviest->leader;
    }
  }
}

const TargetTrackingStats& CoherenceMonitor::stats_for(
    TargetId target) const {
  return targets_[target].stats;
}

TargetTrackingStats CoherenceMonitor::combined() const {
  TargetTrackingStats out;
  for (const auto& [tid, pt] : targets_) {
    out.successful_handovers += pt.stats.successful_handovers;
    out.failed_handovers += pt.stats.failed_handovers;
    out.distinct_labels += pt.stats.distinct_labels;
    out.replicated_samples += pt.stats.replicated_samples;
    out.tracked_samples += pt.stats.tracked_samples;
    out.total_samples += pt.stats.total_samples;
  }
  return out;
}

bool CoherenceMonitor::all_coherent() const {
  for (const auto& [tid, pt] : targets_) {
    if (!pt.stats.coherent()) return false;
  }
  return !targets_.empty();
}

}  // namespace et::metrics
