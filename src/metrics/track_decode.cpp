#include "metrics/track_decode.hpp"

namespace et::metrics {

std::optional<DecodedTrack> decode_track_report(
    const core::UserMessagePayload& msg, std::string_view expected_tag,
    Time now) {
  if (msg.tag != expected_tag || msg.data.size() < 2) return std::nullopt;
  DecodedTrack decoded;
  decoded.time = now;
  decoded.label = msg.src_label;
  decoded.source = msg.src_node;
  decoded.position = Vec2{msg.data[0], msg.data[1]};
  decoded.epoch = msg.epoch;
  return decoded;
}

}  // namespace et::metrics
