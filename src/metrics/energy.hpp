#pragma once

#include <vector>

#include "core/system.hpp"

/// Energy accounting for a deployment.
///
/// Disposable motes live on coin cells; the paper's motivation (massive,
/// cheap, unattended deployments) makes per-node energy the budget that
/// ultimately bounds a tracking mission. This model charges each mote for
/// radio transmission and reception per bit, CPU busy time, and a constant
/// idle draw — the standard first-order WSN energy model. Defaults are in
/// the right regime for a MICA-class mote (CC1000-era radio, AA cells).
namespace et::metrics {

struct EnergyModel {
  /// Joules per transmitted bit (incl. amplifier).
  double tx_joules_per_bit = 1.0e-6;
  /// Joules per received bit.
  double rx_joules_per_bit = 0.5e-6;
  /// Active CPU draw (W) applied to CPU busy time.
  double cpu_active_watts = 24.0e-3;
  /// Receiver idle-listening draw (W), applied to time the radio was on —
  /// the dominant budget item on always-on motes, and what duty cycling
  /// reclaims.
  double listen_watts = 15.0e-3;
  /// Baseline draw (W) applied to wall-clock time (MCU sleep, sensors).
  double idle_watts = 0.1e-3;
};

struct NodeEnergy {
  double tx_joules = 0.0;
  double rx_joules = 0.0;
  double cpu_joules = 0.0;
  double listen_joules = 0.0;
  double idle_joules = 0.0;

  double total() const {
    return tx_joules + rx_joules + cpu_joules + listen_joules + idle_joules;
  }
};

struct EnergyReport {
  std::vector<NodeEnergy> per_node;
  NodeEnergy totals;

  double max_node_joules() const {
    double m = 0.0;
    for (const NodeEnergy& n : per_node) m = std::max(m, n.total());
    return m;
  }
  double mean_node_joules() const {
    return per_node.empty() ? 0.0
                            : totals.total() /
                                  static_cast<double>(per_node.size());
  }
};

/// Computes the deployment's energy spend so far from the medium's
/// per-endpoint counters, the CPU busy times, and the elapsed clock.
EnergyReport measure_energy(core::EnviroTrackSystem& system,
                            const EnergyModel& model = {});

}  // namespace et::metrics
