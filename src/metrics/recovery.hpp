#pragma once

#include <cstdint>
#include <vector>

#include "core/events.hpp"
#include "core/system.hpp"
#include "fault/fault_injector.hpp"

/// Recovery metrics: how fast and how cleanly the protocol heals from
/// injected faults.
///
/// Subscribes to both the fault injector (when did a leader die?) and the
/// group-event stream (when did somebody lead again?), and samples ground
/// truth periodically to integrate the *tracking gap* — seconds during
/// which an exposed target had no live leader at all. Three quantities the
/// paper's robustness claim needs numbers for:
///  - time-to-takeover: leader crash -> next kBecameLeader of that type,
///  - label continuity: did the takeover keep the dead leader's label
///    (identity preserved across the fault) or mint/adopt a new one,
///  - tracking-gap seconds: integral of "some target is untracked".
namespace et::metrics {

class RecoveryMonitor final : public core::GroupObserver {
 public:
  struct Stats {
    /// Crash faults that hit a current group leader.
    std::uint64_t leader_faults = 0;
    /// Leader faults answered by a subsequent leadership assumption of the
    /// same context type.
    std::uint64_t recoveries = 0;
    /// Recoveries that kept the crashed leader's label vs replaced it.
    std::uint64_t label_preserved = 0;
    std::uint64_t label_replaced = 0;
    Duration total_takeover = Duration::zero();
    Duration max_takeover = Duration::zero();
    /// Ground-truth samples with at least one active target, and those
    /// where every active target had an alive leader sensing it.
    std::uint64_t exposed_samples = 0;
    std::uint64_t tracked_samples = 0;
  };

  /// Registers with both the system's group-event stream (the system must
  /// be started) and the injector's fault stream. Both must outlive the
  /// monitor.
  RecoveryMonitor(core::EnviroTrackSystem& system,
                  fault::FaultInjector& injector,
                  Duration sample_period = Duration::millis(100));
  ~RecoveryMonitor() override { tick_.cancel(); }

  RecoveryMonitor(const RecoveryMonitor&) = delete;
  RecoveryMonitor& operator=(const RecoveryMonitor&) = delete;

  void on_group_event(const core::GroupEvent& event) override;

  const Stats& stats() const { return stats_; }
  double mean_takeover_seconds() const {
    return stats_.recoveries == 0
               ? 0.0
               : stats_.total_takeover.to_seconds() /
                     static_cast<double>(stats_.recoveries);
  }
  double label_preserved_fraction() const {
    const std::uint64_t n = stats_.label_preserved + stats_.label_replaced;
    return n == 0 ? 1.0
                  : static_cast<double>(stats_.label_preserved) /
                        static_cast<double>(n);
  }
  /// Integrated untracked-while-exposed time.
  double tracking_gap_seconds() const {
    return static_cast<double>(stats_.exposed_samples -
                               stats_.tracked_samples) *
           sample_period_.to_seconds();
  }

 private:
  struct OpenGap {
    Time opened;
    core::TypeIndex type = 0;
    LabelId label;
  };

  void on_fault(const fault::FaultRecord& record);
  void sample();

  core::EnviroTrackSystem& system_;
  Duration sample_period_;
  std::vector<OpenGap> open_;
  sim::EventHandle tick_;
  Stats stats_;
};

}  // namespace et::metrics
