#pragma once

#include <string>

#include "radio/medium.hpp"
#include "util/time.hpp"

/// Table-1 style communication performance summaries.
namespace et::metrics {

/// The three columns the paper reports per run: % lost leader heartbeats,
/// % lost data (report) messages, and average useful link utilization
/// against the 50 kb/s broadcast channel.
struct ChannelReport {
  double heartbeat_loss_pct = 0.0;
  double report_loss_pct = 0.0;
  double link_utilization_pct = 0.0;

  static ChannelReport from(const radio::MediumStats& stats, Duration elapsed,
                            double bitrate_bps) {
    ChannelReport report;
    // Heartbeats are broadcasts: loss is what a group member in range
    // experiences (per receiver-frame pair). Reports are unicast to the
    // leader, where pair loss and frame loss coincide.
    report.heartbeat_loss_pct =
        100.0 * stats.of(radio::MsgType::kHeartbeat).pair_loss_rate();
    report.report_loss_pct =
        100.0 * stats.of(radio::MsgType::kReport).pair_loss_rate();
    report.link_utilization_pct =
        100.0 * stats.link_utilization(elapsed, bitrate_bps);
    return report;
  }

  std::string to_string() const;
};

}  // namespace et::metrics
