#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "node/mote.hpp"
#include "radio/packet.hpp"
#include "util/geometry.hpp"
#include "util/lru_map.hpp"

/// Location-aware multi-hop routing.
///
/// The paper assumes "network nodes and routing are location-aware" (§2) and
/// builds its directory (§5.3) and transport (§5.4) on coordinate-addressed
/// delivery. This module provides that substrate: greedy geographic
/// forwarding — each hop relays to the neighbour strictly closest to the
/// destination coordinate — with per-hop stop-and-wait ARQ (the end-to-end
/// protocols atop it assume links lose frames but not entire paths), TTL,
/// and duplicate suppression.
namespace et::net {

/// End-to-end envelope carried inside kRoute frames.
struct RouteEnvelope {
  std::uint64_t envelope_id = 0;  // (origin << 32 | seq), for dedup/acks
  NodeId origin;
  Vec2 dest;                       // destination coordinate
  std::optional<NodeId> final_dst; // when set, only this node may consume
  radio::MsgType inner_type = radio::MsgType::kUser;
  std::shared_ptr<const radio::Payload> inner;
  std::uint16_t hops = 0;
  std::uint16_t max_hops = 32;
};

struct RoutingConfig {
  /// Per-hop transmissions before giving up on a link (1 = no retry).
  int hop_attempts = 3;
  /// How long to wait for the next hop's ack before retrying.
  Duration ack_timeout = Duration::millis(60);
  /// Ack-timeout multiplier per successive attempt of the same hop. A flat
  /// retry cadence melts down under load: when the MAC queue backs up, the
  /// queueing delay alone exceeds the timeout, every healthy link looks
  /// dead, and the retries feed the very congestion that started it.
  double retry_backoff = 2.0;
  /// Uniform jitter fraction on top of the backoff (desynchronises relays
  /// that lost the same frame). Drawn from the mote's RNG stream, so runs
  /// stay bit-reproducible.
  double retry_jitter = 0.5;
  /// Dead-neighbour fallbacks tried per envelope before giving up. In a
  /// dense deployment an uncapped sweep re-sends the envelope to every
  /// closer neighbour — tens of transmissions per envelope during a loss
  /// burst, which is exactly when the channel can least afford them.
  int max_fallbacks = 3;
  /// TTL for new envelopes.
  std::uint16_t max_hops = 32;
  /// Remembered envelope ids for duplicate suppression.
  std::size_t dedup_capacity = 128;
  /// A node "has arrived" when it is within this distance of the
  /// destination coordinate and no neighbour is closer.
  double arrival_radius = 0.75;
};

struct RoutingStats {
  std::uint64_t originated = 0;
  std::uint64_t delivered = 0;       // consumed at this node
  std::uint64_t forwarded = 0;       // relayed one hop
  std::uint64_t retries = 0;         // per-hop retransmissions
  std::uint64_t dropped_dead_end = 0;  // greedy local minimum / link dead
  std::uint64_t dropped_ttl = 0;
  std::uint64_t duplicates = 0;
};

/// Per-mote routing service. Owns MsgType::kRoute and kRouteAck on its mote.
class GeoRouting {
 public:
  /// Upcall on consumed envelopes, keyed by inner message type.
  using DeliveryHandler = std::function<void(const RouteEnvelope&)>;

  GeoRouting(node::Mote& mote, RoutingConfig config = {});

  /// Registers the consumer for an inner message type.
  void on_delivery(radio::MsgType inner_type, DeliveryHandler handler);

  /// Originates an envelope toward `dest`. When `final_dst` is set the
  /// envelope is only consumed by that node (otherwise it is consumed by
  /// the node closest to `dest`).
  void send(Vec2 dest, radio::MsgType inner_type,
            std::shared_ptr<const radio::Payload> inner,
            std::optional<NodeId> final_dst = std::nullopt);

  /// Node-reboot hook: abandons in-flight hops (ARQ timers cancelled,
  /// envelopes dropped) and forgets the duplicate-suppression window. The
  /// neighbour cache survives — motes are stationary.
  void reboot();

  const RoutingStats& stats() const { return stats_; }

 private:
  struct PendingHop {
    RouteEnvelope envelope;
    NodeId next_hop;
    int attempts_left;
    sim::EventHandle timeout;
    /// Neighbours that exhausted their ARQ attempts for this envelope;
    /// the forwarder falls back to the next-closest alive neighbour.
    std::vector<NodeId> dead;
  };

  void handle_route(const radio::Frame& frame);
  void handle_ack(const radio::Frame& frame);

  /// Accepts an envelope at this node: consume or forward.
  void accept(RouteEnvelope envelope);
  void forward(RouteEnvelope envelope);
  void transmit_hop(std::uint64_t envelope_id);
  void consume(const RouteEnvelope& envelope);

  /// Cached neighbour entry: id plus position, so the per-hop greedy scan
  /// never goes back to the medium (motes are stationary; positions are
  /// fixed at deployment).
  struct Neighbor {
    NodeId id;
    Vec2 pos;
  };

  /// The neighbour strictly closer to `dest` than this node, skipping
  /// `exclude`, or nullopt.
  std::optional<NodeId> best_next_hop(
      Vec2 dest, const std::vector<NodeId>& exclude = {}) const;
  const std::vector<Neighbor>& neighbors() const;

  node::Mote& mote_;
  RoutingConfig config_;
  std::array<DeliveryHandler, radio::kMsgTypeCount> delivery_{};
  mutable std::vector<Neighbor> neighbor_cache_;
  mutable bool neighbors_cached_ = false;
  std::uint32_t next_seq_ = 0;
  LruMap<std::uint64_t, bool> seen_;
  std::unordered_map<std::uint64_t, PendingHop> pending_;
  RoutingStats stats_;
};

}  // namespace et::net
