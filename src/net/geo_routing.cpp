#include "net/geo_routing.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace et::net {

namespace {

constexpr const char* kComponent = "geo-routing";

/// Wire representation of an in-flight envelope.
class RoutePayload final : public radio::Payload {
 public:
  explicit RoutePayload(RouteEnvelope envelope)
      : envelope_(std::move(envelope)) {}

  std::size_t size_bytes() const override {
    // envelope id (8) + origin (2) + dest coord (8) + flags/ttl (2) + inner.
    return 20 + (envelope_.inner ? envelope_.inner->size_bytes() : 0);
  }
  const RouteEnvelope& envelope() const { return envelope_; }

 private:
  RouteEnvelope envelope_;
};

/// Per-hop acknowledgement.
class AckPayload final : public radio::Payload {
 public:
  explicit AckPayload(std::uint64_t envelope_id) : envelope_id_(envelope_id) {}
  std::size_t size_bytes() const override { return 8; }
  std::uint64_t envelope_id() const { return envelope_id_; }

 private:
  std::uint64_t envelope_id_;
};

}  // namespace

GeoRouting::GeoRouting(node::Mote& mote, RoutingConfig config)
    : mote_(mote), config_(config), seen_(config.dedup_capacity) {
  mote_.set_handler(radio::MsgType::kRoute,
                    [this](const radio::Frame& f) { handle_route(f); });
  mote_.set_handler(radio::MsgType::kRouteAck,
                    [this](const radio::Frame& f) { handle_ack(f); });
}

void GeoRouting::on_delivery(radio::MsgType inner_type,
                             DeliveryHandler handler) {
  auto& slot = delivery_[static_cast<std::size_t>(inner_type)];
  assert(!slot && "one consumer per inner type");
  slot = std::move(handler);
}

const std::vector<GeoRouting::Neighbor>& GeoRouting::neighbors() const {
  if (!neighbors_cached_) {
    radio::Medium& medium = mote_.medium();
    neighbor_cache_.clear();
    for (NodeId n : medium.neighbors(mote_.id())) {
      neighbor_cache_.push_back(Neighbor{n, medium.position_of(n)});
    }
    neighbors_cached_ = true;
  }
  return neighbor_cache_;
}

std::optional<NodeId> GeoRouting::best_next_hop(
    Vec2 dest, const std::vector<NodeId>& exclude) const {
  const double own = distance_sq(mote_.position(), dest);
  std::optional<NodeId> best;
  double best_d = own;
  for (const Neighbor& n : neighbors()) {
    if (std::find(exclude.begin(), exclude.end(), n.id) != exclude.end()) {
      continue;
    }
    const double d = distance_sq(n.pos, dest);
    if (d < best_d) {
      best_d = d;
      best = n.id;
    }
  }
  return best;
}

void GeoRouting::send(Vec2 dest, radio::MsgType inner_type,
                      std::shared_ptr<const radio::Payload> inner,
                      std::optional<NodeId> final_dst) {
  RouteEnvelope envelope;
  envelope.envelope_id =
      (mote_.id().value() << 32) | static_cast<std::uint64_t>(next_seq_++);
  envelope.origin = mote_.id();
  envelope.dest = dest;
  envelope.final_dst = final_dst;
  envelope.inner_type = inner_type;
  envelope.inner = std::move(inner);
  envelope.max_hops = config_.max_hops;
  stats_.originated++;
  accept(std::move(envelope));
}

void GeoRouting::handle_route(const radio::Frame& frame) {
  const auto* payload = static_cast<const RoutePayload*>(frame.payload.get());
  const RouteEnvelope& envelope = payload->envelope();

  // Ack the hop first — the previous relay only needs to know we have it,
  // even when it turns out to be a duplicate.
  mote_.unicast(frame.src, radio::MsgType::kRouteAck,
                std::make_shared<AckPayload>(envelope.envelope_id));

  if (seen_.contains(envelope.envelope_id)) {
    stats_.duplicates++;
    return;
  }
  accept(envelope);
}

void GeoRouting::handle_ack(const radio::Frame& frame) {
  const auto* payload = static_cast<const AckPayload*>(frame.payload.get());
  auto it = pending_.find(payload->envelope_id());
  if (it == pending_.end()) return;  // late ack after retry resolution
  it->second.timeout.cancel();
  pending_.erase(it);
}

void GeoRouting::reboot() {
  for (auto& [id, hop] : pending_) hop.timeout.cancel();
  pending_.clear();
  seen_.clear();
}

void GeoRouting::accept(RouteEnvelope envelope) {
  seen_.put(envelope.envelope_id, true);

  if (envelope.final_dst && *envelope.final_dst == mote_.id()) {
    consume(envelope);
    return;
  }

  const auto next = best_next_hop(envelope.dest);
  if (!next) {
    // Greedy local minimum: this node is closer to the destination
    // coordinate than every neighbour.
    if (!envelope.final_dst) {
      consume(envelope);  // coordinate-addressed: nearest node consumes
    } else {
      stats_.dropped_dead_end++;
      ET_DEBUG(kComponent, "node %llu: dead end toward %s",
               static_cast<unsigned long long>(mote_.id().value()),
               envelope.dest.to_string().c_str());
    }
    return;
  }
  envelope.hops++;
  if (envelope.hops > envelope.max_hops) {
    stats_.dropped_ttl++;
    return;
  }

  PendingHop hop{std::move(envelope), *next, config_.hop_attempts,
                 sim::EventHandle{}, {}};
  const std::uint64_t id = hop.envelope.envelope_id;
  pending_[id] = std::move(hop);
  stats_.forwarded++;
  transmit_hop(id);
}

void GeoRouting::transmit_hop(std::uint64_t envelope_id) {
  auto it = pending_.find(envelope_id);
  if (it == pending_.end()) return;
  PendingHop& hop = it->second;
  hop.attempts_left--;
  mote_.unicast(hop.next_hop, radio::MsgType::kRoute,
                std::make_shared<RoutePayload>(hop.envelope));
  // Exponential backoff + jitter per attempt. The growing timeout also
  // absorbs MAC queueing delay under load, so a congested (but alive) link
  // is not misdiagnosed as dead and swept for fallbacks.
  const int attempt = config_.hop_attempts - hop.attempts_left - 1;
  double backoff = 1.0;
  for (int i = 0; i < attempt; ++i) backoff *= config_.retry_backoff;
  const double jitter =
      1.0 + config_.retry_jitter * mote_.rng().next_double();
  hop.timeout = mote_.sim().schedule(
      config_.ack_timeout * (backoff * jitter), [this, envelope_id] {
    auto pending_it = pending_.find(envelope_id);
    if (pending_it == pending_.end()) return;  // acked meanwhile
    PendingHop& pending = pending_it->second;
    if (pending.attempts_left > 0) {
      stats_.retries++;
      transmit_hop(envelope_id);
      return;
    }
    // This link is dead (crashed node or persistent interference): route
    // around it through the next-closest alive neighbour — but only a
    // bounded number of times per envelope, or a loss burst turns every
    // envelope into a broadcast storm over all closer neighbours.
    pending.dead.push_back(pending.next_hop);
    if (static_cast<int>(pending.dead.size()) <= config_.max_fallbacks) {
      if (const auto alternative =
              best_next_hop(pending.envelope.dest, pending.dead)) {
        pending.next_hop = *alternative;
        pending.attempts_left = config_.hop_attempts;
        stats_.retries++;
        transmit_hop(envelope_id);
        return;
      }
    }
    // No alternative: for coordinate-addressed envelopes this node is the
    // closest *reachable* one and consumes; targeted envelopes drop.
    RouteEnvelope envelope = std::move(pending.envelope);
    pending_.erase(pending_it);
    if (!envelope.final_dst) {
      consume(envelope);
    } else {
      stats_.dropped_dead_end++;
    }
  });
}

void GeoRouting::consume(const RouteEnvelope& envelope) {
  stats_.delivered++;
  const auto& handler =
      delivery_[static_cast<std::size_t>(envelope.inner_type)];
  if (handler) handler(envelope);
}

}  // namespace et::net
