#include "fuzz/artifact.hpp"

#include <algorithm>
#include <utility>

namespace et::fuzz {

namespace {

constexpr const char* kFormatTag = "et-chaos-repro-v1";

/// ~20% effective Gilbert–Elliott loss (matches bench/chaos_sweep.cpp).
radio::BurstLossConfig twenty_pct_burst_loss() {
  radio::BurstLossConfig ge;
  ge.enabled = true;
  ge.mean_good = Duration::seconds(2);
  ge.mean_bad = Duration::millis(500);
  ge.loss_good = 0.05;
  ge.loss_bad = 0.8;
  return ge;
}

Expected<FuzzScenario> scenario_fail(std::string message) {
  return Expected<FuzzScenario>::failure("chaos_artifact", std::move(message));
}

Expected<ReproArtifact> artifact_fail(std::string message) {
  return Expected<ReproArtifact>::failure("chaos_artifact",
                                          std::move(message));
}

/// Reads a positive integer-microsecond duration member.
bool read_duration_us(const util::Json& doc, std::string_view key,
                      Duration* out) {
  const util::Json& value = doc[key];
  if (!value.is_int()) return false;
  *out = Duration::micros(value.as_int());
  return true;
}

}  // namespace

Duration FuzzScenario::horizon() const {
  // The target enters one hop left of the field and leaves one hop right
  // of it; grid spacing is one hop.
  const double traverse_s =
      (static_cast<double>(cols) + 2.0) / std::max(speed_hops_per_s, 0.1);
  return Duration::seconds(traverse_s) + cooldown;
}

scenario::TankScenarioParams FuzzScenario::to_params(
    std::uint64_t seed, const sim::KernelConfig& kernel) const {
  scenario::TankScenarioParams params;
  params.rows = rows;
  params.cols = cols;
  params.speed_hops_per_s = speed_hops_per_s;
  params.track_y = track_y;
  params.group.heartbeat_period = heartbeat_period;
  params.duty_cycle_awake_fraction = duty_cycle_awake_fraction;
  if (ge_loss) params.radio.burst_loss = twenty_pct_burst_loss();
  params.enable_transport = reliable_transport;
  // The fence path (and therefore the epoch invariants under partitions)
  // needs the directory rendezvous.
  params.enable_directory = true;
  params.directory.update_period = Duration::seconds(1);
  params.report_period = report_period;
  params.cooldown = cooldown;
  params.kernel = kernel;
  params.kernel.wide_windows = wide_windows;
  params.seed = seed;
  return params;
}

util::Json FuzzScenario::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("rows", static_cast<std::int64_t>(rows));
  doc.set("cols", static_cast<std::int64_t>(cols));
  doc.set("speed_hops_per_s", speed_hops_per_s);
  doc.set("track_y", track_y);
  doc.set("heartbeat_us", heartbeat_period.to_micros());
  doc.set("duty_cycle_awake_fraction", duty_cycle_awake_fraction);
  doc.set("ge_loss", ge_loss);
  doc.set("reliable_transport", reliable_transport);
  doc.set("wide_windows", wide_windows);
  doc.set("report_period_us", report_period.to_micros());
  doc.set("cooldown_us", cooldown.to_micros());
  doc.set("harass", harass);
  doc.set("harass_period_us", harass_period.to_micros());
  doc.set("harass_downtime_us", harass_downtime.to_micros());
  return doc;
}

Expected<FuzzScenario> FuzzScenario::from_json(const util::Json& doc) {
  if (!doc.is_object()) return scenario_fail("scenario must be an object");
  FuzzScenario s;
  if (!doc["rows"].is_int() || !doc["cols"].is_int()) {
    return scenario_fail("scenario rows/cols must be integers");
  }
  const std::int64_t rows = doc["rows"].as_int();
  const std::int64_t cols = doc["cols"].as_int();
  if (rows < 1 || cols < 2 || rows * cols > 4096) {
    return scenario_fail("scenario grid out of range (rows >= 1, cols >= 2, "
                         "rows*cols <= 4096)");
  }
  s.rows = static_cast<std::size_t>(rows);
  s.cols = static_cast<std::size_t>(cols);
  if (!doc["speed_hops_per_s"].is_number()) {
    return scenario_fail("scenario needs a numeric speed_hops_per_s");
  }
  s.speed_hops_per_s = doc["speed_hops_per_s"].as_double();
  if (s.speed_hops_per_s <= 0.0 || s.speed_hops_per_s > 100.0) {
    return scenario_fail("speed_hops_per_s must be in (0, 100]");
  }
  s.track_y = doc["track_y"].as_double(s.track_y);
  if (!read_duration_us(doc, "heartbeat_us", &s.heartbeat_period) ||
      !s.heartbeat_period.is_positive()) {
    return scenario_fail("heartbeat_us must be a positive integer");
  }
  s.duty_cycle_awake_fraction =
      doc["duty_cycle_awake_fraction"].as_double(1.0);
  if (s.duty_cycle_awake_fraction <= 0.0 ||
      s.duty_cycle_awake_fraction > 1.0) {
    return scenario_fail("duty_cycle_awake_fraction must be in (0, 1]");
  }
  s.ge_loss = doc["ge_loss"].as_bool(false);
  s.reliable_transport = doc["reliable_transport"].as_bool(false);
  s.wide_windows = doc["wide_windows"].as_bool(true);
  if (!read_duration_us(doc, "report_period_us", &s.report_period) ||
      !s.report_period.is_positive()) {
    return scenario_fail("report_period_us must be a positive integer");
  }
  if (!read_duration_us(doc, "cooldown_us", &s.cooldown) ||
      s.cooldown.is_negative()) {
    return scenario_fail("cooldown_us must be a non-negative integer");
  }
  s.harass = doc["harass"].as_bool(false);
  if (s.harass) {
    if (!read_duration_us(doc, "harass_period_us", &s.harass_period) ||
        !s.harass_period.is_positive() ||
        !read_duration_us(doc, "harass_downtime_us", &s.harass_downtime) ||
        !s.harass_downtime.is_positive()) {
      return scenario_fail(
          "harassment needs positive harass_period_us/harass_downtime_us");
    }
  }
  return s;
}

util::Json ReproArtifact::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("format", kFormatTag);
  doc.set("seed", static_cast<std::int64_t>(seed));
  doc.set("scenario", scenario.to_json());
  doc.set("plan", plan.to_json());
  if (!note.empty()) doc.set("note", note);
  if (!expect_failure.empty()) doc.set("expect_failure", expect_failure);
  return doc;
}

Expected<ReproArtifact> ReproArtifact::from_json(const util::Json& doc) {
  if (!doc.is_object()) return artifact_fail("artifact must be an object");
  if (!doc["format"].is_string() ||
      doc["format"].as_string() != kFormatTag) {
    return artifact_fail("unknown artifact format (expected '" +
                         std::string(kFormatTag) + "')");
  }
  ReproArtifact artifact;
  if (!doc["seed"].is_int() || doc["seed"].as_int() < 0) {
    return artifact_fail("'seed' must be a non-negative integer");
  }
  artifact.seed = static_cast<std::uint64_t>(doc["seed"].as_int());
  Expected<FuzzScenario> scenario = FuzzScenario::from_json(doc["scenario"]);
  if (!scenario.ok()) {
    return artifact_fail("bad scenario: " + scenario.error().message);
  }
  artifact.scenario = std::move(scenario).value();
  Expected<fault::FaultPlan> plan = fault::FaultPlan::from_json(doc["plan"]);
  if (!plan.ok()) {
    return artifact_fail("bad fault plan: " + plan.error().message);
  }
  artifact.plan = std::move(plan).value();
  artifact.note = doc["note"].as_string();
  artifact.expect_failure = doc["expect_failure"].as_string();
  // A plan that cannot be scheduled against this deployment is not a valid
  // artifact — reject at parse time, with the first concrete reason.
  const std::vector<std::string> problems =
      artifact.plan.validate(artifact.scenario.node_count());
  if (!problems.empty()) {
    return artifact_fail("plan invalid for a " +
                         std::to_string(artifact.scenario.node_count()) +
                         "-mote deployment: " + problems.front());
  }
  return artifact;
}

Expected<ReproArtifact> ReproArtifact::from_json_string(
    std::string_view text) {
  Expected<util::Json> doc = util::parse_json(text);
  if (!doc.ok()) {
    return artifact_fail("artifact is not valid JSON: " +
                         doc.error().message);
  }
  return from_json(doc.value());
}

}  // namespace et::fuzz
