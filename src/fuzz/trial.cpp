#include "fuzz/trial.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "bench/bench_util.hpp"
#include "fault/fault_injector.hpp"
#include "metrics/invariants.hpp"
#include "serve/ingest.hpp"
#include "serve/track_store.hpp"

namespace et::fuzz {

namespace {

struct RunOutput {
  metrics::ChaosVerdict verdict;
  std::string digest;
  double sim_seconds = 0.0;
  std::uint64_t faults = 0;
};

/// Serve-answer validation: every query family of the store is checked
/// against the ingest tape — the in-order record of every admitted report,
/// which is ground truth for what the store must contain.
void validate_serve(const serve::ShardedTrackStore& store,
                    const std::vector<metrics::DecodedTrack>& tape,
                    std::size_t ring_capacity,
                    metrics::ChaosVerdict* verdict) {
  std::map<std::uint64_t, std::vector<const metrics::DecodedTrack*>>
      by_label;
  for (const metrics::DecodedTrack& report : tape) {
    by_label[report.label.value()].push_back(&report);
  }

  bool ok = true;
  const auto fail = [&](std::string detail) {
    verdict->fail("serve-validate", std::move(detail));
    ok = false;
  };

  for (const auto& [label_value, reports] : by_label) {
    const LabelId label{label_value};
    const std::string tag = "label " + std::to_string(label_value);

    const auto snapshot = store.latest(label);
    if (!snapshot.has_value()) {
      fail(tag + ": latest() lost a label the tape ingested");
      continue;
    }
    const metrics::DecodedTrack& last = *reports.back();
    if (snapshot->position.x != last.position.x ||
        snapshot->position.y != last.position.y ||
        snapshot->time != last.time || snapshot->epoch != last.epoch) {
      fail(tag + ": latest() disagrees with the tape's final report");
    }
    if (snapshot->seq != reports.size()) {
      fail(tag + ": latest().seq " + std::to_string(snapshot->seq) +
           " != " + std::to_string(reports.size()) + " tape reports");
    }

    const std::vector<serve::TrackSnapshot> history =
        store.history(label, Duration::seconds(1e8));
    const std::size_t expected =
        std::min(reports.size(), ring_capacity);
    if (history.size() != expected) {
      fail(tag + ": history() returned " + std::to_string(history.size()) +
           " points, expected " + std::to_string(expected));
      continue;
    }
    const std::size_t base = reports.size() - expected;
    for (std::size_t i = 0; i < expected; ++i) {
      const metrics::DecodedTrack& want = *reports[base + i];
      const serve::TrackSnapshot& got = history[i];
      if (got.position.x != want.position.x ||
          got.position.y != want.position.y || got.time != want.time ||
          got.epoch != want.epoch || got.seq != base + i + 1) {
        fail(tag + ": history()[" + std::to_string(i) +
             "] disagrees with the tape");
        break;
      }
    }
  }

  // An everything-rect query must answer exactly the tape's label set,
  // sorted by label id.
  const Rect everywhere{{-1e12, -1e12}, {1e12, 1e12}};
  const std::vector<serve::TrackSnapshot> all =
      store.tracks_in_region(everywhere);
  if (all.size() != by_label.size()) {
    fail("tracks_in_region(everything) returned " +
         std::to_string(all.size()) + " tracks, tape has " +
         std::to_string(by_label.size()) + " labels");
  } else {
    auto it = by_label.begin();
    for (std::size_t i = 0; i < all.size(); ++i, ++it) {
      if (all[i].label.value() != it->first) {
        fail("tracks_in_region(everything) label set or order diverged "
             "from the tape at index " +
             std::to_string(i));
        break;
      }
    }
  }

  if (ok) verdict->pass("serve-validate");
}

/// The deterministic metric digest one kernel's run reduces to. Two runs
/// of the same artifact on different kernels must render byte-identical
/// digests — this is the differential oracle's input.
std::string build_digest(const scenario::TankRunResult& result,
                         const metrics::InvariantOracle& oracle,
                         const serve::TrackIngest& ingest,
                         const serve::ShardedTrackStore& store,
                         const sim::WatchdogReport& watchdog,
                         std::uint64_t seed) {
  bench::JsonRows rows;
  const std::string config = "trial";
  const auto add = [&](const std::string& metric, double value) {
    rows.add_exact(config, seed, metric, value);
  };

  add("tracking.distinct_labels",
      static_cast<double>(result.tracking.distinct_labels));
  add("tracking.tracked_samples",
      static_cast<double>(result.tracking.tracked_samples));
  add("tracking.total_samples",
      static_cast<double>(result.tracking.total_samples));
  add("tracking.replicated_samples",
      static_cast<double>(result.tracking.replicated_samples));
  add("tracking.successful_handovers",
      static_cast<double>(result.tracking.successful_handovers));
  add("tracking.failed_handovers",
      static_cast<double>(result.tracking.failed_handovers));
  add("tracking.detection_latency_s",
      result.tracking.detection_latency.to_seconds());

  add("groups.heartbeats_sent",
      static_cast<double>(result.groups.heartbeats_sent));
  add("groups.labels_created",
      static_cast<double>(result.groups.labels_created));
  add("groups.takeovers", static_cast<double>(result.groups.takeovers));
  add("groups.relinquishes",
      static_cast<double>(result.groups.relinquishes));
  add("groups.yields", static_cast<double>(result.groups.yields));
  add("groups.joins", static_cast<double>(result.groups.joins));
  add("groups.fenced", static_cast<double>(result.groups.fenced));
  add("groups.stale_heartbeats_ignored",
      static_cast<double>(result.groups.stale_heartbeats_ignored));
  add("groups.epochs_absorbed",
      static_cast<double>(result.groups.epochs_absorbed));
  add("groups.reports_sent",
      static_cast<double>(result.groups.reports_sent));
  add("groups.reports_received",
      static_cast<double>(result.groups.reports_received));

  const radio::TypeStats medium = result.medium.totals();
  add("medium.offered", static_cast<double>(medium.offered));
  add("medium.transmitted", static_cast<double>(medium.transmitted));
  add("medium.mac_dropped", static_cast<double>(medium.mac_dropped));
  add("medium.lost", static_cast<double>(medium.lost));
  add("medium.bits_sent", static_cast<double>(result.medium.bits_sent));
  add("medium.airtime_s", result.medium.airtime.to_seconds());

  // The pursuer-side track tape, point by point: position divergence
  // anywhere in the run shows up as the first differing row.
  add("track.points", static_cast<double>(result.track.size()));
  for (std::size_t i = 0; i < result.track.size(); ++i) {
    const metrics::TrackPoint& point = result.track[i];
    const std::string prefix = "track." + std::to_string(i);
    add(prefix + ".t", point.time.to_seconds());
    add(prefix + ".label", static_cast<double>(point.label.value()));
    add(prefix + ".x", point.reported.x);
    add(prefix + ".y", point.reported.y);
    add(prefix + ".error", point.error);
  }

  const serve::IngestStats ingest_stats = ingest.stats();
  add("ingest.reports_seen",
      static_cast<double>(ingest_stats.reports_seen));
  add("ingest.stale_discarded",
      static_cast<double>(ingest_stats.stale_discarded));
  add("ingest.batches_flushed",
      static_cast<double>(ingest_stats.batches_flushed));
  add("ingest.reports_stored",
      static_cast<double>(ingest_stats.reports_stored));

  add("tape.size", static_cast<double>(ingest.tape().size()));
  for (std::size_t i = 0; i < ingest.tape().size(); ++i) {
    const metrics::DecodedTrack& report = ingest.tape()[i];
    const std::string prefix = "tape." + std::to_string(i);
    add(prefix + ".t", report.time.to_seconds());
    add(prefix + ".label", static_cast<double>(report.label.value()));
    add(prefix + ".source", static_cast<double>(report.source.value()));
    add(prefix + ".x", report.position.x);
    add(prefix + ".y", report.position.y);
    add(prefix + ".epoch", static_cast<double>(report.epoch));
  }

  const serve::StoreStats store_stats = store.stats();
  add("store.reports_applied",
      static_cast<double>(store_stats.reports_applied));
  add("store.labels", static_cast<double>(store_stats.labels));
  add("store.points_evicted",
      static_cast<double>(store_stats.points_evicted));

  add("oracle.checks_run", static_cast<double>(oracle.checks_run()));
  add("oracle.violations",
      static_cast<double>(oracle.violations().size()));
  add("watchdog.tripped", watchdog.tripped ? 1.0 : 0.0);
  add("elapsed_s", result.elapsed.to_seconds());
  return rows.render();
}

RunOutput run_one(const ReproArtifact& artifact,
                  const sim::KernelConfig& kernel,
                  const TrialOptions& options) {
  RunOutput out;
  const scenario::TankScenarioParams params =
      artifact.scenario.to_params(artifact.seed, kernel);
  scenario::TankScenario scenario(params);
  metrics::InvariantOracle oracle(scenario.system());

  serve::StoreConfig store_config;
  serve::ShardedTrackStore store(store_config);
  serve::IngestConfig ingest_config;
  ingest_config.record_tape = true;
  serve::TrackIngest ingest(scenario.system(), NodeId{0}, store,
                            ingest_config);

  fault::FaultInjector injector(scenario.system());
  const Expected<std::size_t> scheduled = injector.schedule(artifact.plan);
  if (!scheduled.ok()) {
    out.verdict.fail("fault-plan", scheduled.error().message);
    return out;
  }
  out.faults = scheduled.value();
  if (artifact.scenario.harass) {
    const Expected<std::size_t> harass = injector.harass_leaders(
        scenario.tracker_type(), artifact.scenario.harass_period,
        artifact.scenario.harass_downtime);
    if (!harass.ok()) {
      out.verdict.fail("fault-plan", harass.error().message);
      return out;
    }
  }

  // The watchdog arms the master engine; under the parallel kernel it
  // bounds the run at window-barrier granularity (tile engines replay
  // into the master, so a storm still shows up in its event counts).
  sim::WatchdogConfig watchdog;
  watchdog.enabled = true;
  watchdog.max_events_per_sim_second = options.max_events_per_sim_second;
  watchdog.max_wall_ms_per_sim_second = options.max_wall_ms_per_sim_second;
  scenario.sim().set_watchdog(watchdog);

  const scenario::TankRunResult result = scenario.run();
  ingest.flush();

  const sim::WatchdogReport& report = scenario.sim().watchdog_report();
  if (report.tripped) {
    out.verdict.fail("watchdog", report.reason, report.at.to_seconds());
  } else {
    out.verdict.pass("watchdog");
  }

  if (oracle.ok()) {
    out.verdict.pass("invariants");
  } else {
    for (const metrics::InvariantViolation& violation :
         oracle.violations()) {
      out.verdict.fail(std::string("invariant:") +
                           metrics::invariant_kind_name(violation.kind),
                       violation.detail, violation.time.to_seconds());
    }
  }

  validate_serve(store, ingest.tape(), store_config.ring_capacity,
                 &out.verdict);

  out.digest =
      build_digest(result, oracle, ingest, store, report, artifact.seed);
  out.sim_seconds = result.elapsed.to_seconds();
  return out;
}

/// First differing digest row, for the differential failure detail.
std::string first_digest_diff(const std::string& serial,
                              const std::string& parallel) {
  std::size_t line = 0;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < serial.size() && b < parallel.size()) {
    const std::size_t a_end = serial.find('\n', a);
    const std::size_t b_end = parallel.find('\n', b);
    const std::string row_a = serial.substr(a, a_end - a);
    const std::string row_b = parallel.substr(b, b_end - b);
    if (row_a != row_b) {
      return "digest row " + std::to_string(line) + ": serial " + row_a +
             " vs parallel " + row_b;
    }
    if (a_end == std::string::npos || b_end == std::string::npos) break;
    a = a_end + 1;
    b = b_end + 1;
    ++line;
  }
  return "digests differ in length (serial " +
         std::to_string(serial.size()) + " bytes, parallel " +
         std::to_string(parallel.size()) + " bytes)";
}

}  // namespace

TrialResult run_trial(const ReproArtifact& artifact,
                      const TrialOptions& options) {
  TrialResult trial;

  sim::KernelConfig serial;
  serial.canonical_order = true;
  const RunOutput serial_run = run_one(artifact, serial, options);
  trial.verdict.merge(serial_run.verdict, "serial");
  trial.digest = serial_run.digest;
  trial.sim_seconds = serial_run.sim_seconds;
  trial.faults_scheduled = serial_run.faults;

  if (!options.differential) return trial;
  if (!serial_run.verdict.ok()) {
    // The serial run already failed. Re-running e.g. a livelock on the
    // parallel kernel would stall the campaign for no extra signal, so
    // the differential is recorded as not-run rather than passed.
    return trial;
  }

  sim::KernelConfig parallel;
  parallel.use_parallel_kernel = true;
  parallel.threads = std::max(1u, options.threads);
  const RunOutput parallel_run = run_one(artifact, parallel, options);
  trial.verdict.merge(parallel_run.verdict, "parallel");
  if (parallel_run.digest == serial_run.digest) {
    trial.verdict.pass("differential");
  } else {
    trial.verdict.fail(
        "differential",
        first_digest_diff(serial_run.digest, parallel_run.digest));
  }
  return trial;
}

bool matches_expectation(const ReproArtifact& artifact,
                         const metrics::ChaosVerdict& verdict) {
  if (artifact.expect_failure.empty()) return verdict.ok();
  const metrics::OracleFinding* first = verdict.first_failure();
  if (first == nullptr) return false;
  std::string name = first->oracle;
  for (const char* prefix : {"serial/", "parallel/"}) {
    const std::string p(prefix);
    if (name.rfind(p, 0) == 0) {
      name = name.substr(p.size());
      break;
    }
  }
  return name.rfind(artifact.expect_failure, 0) == 0;
}

}  // namespace et::fuzz
