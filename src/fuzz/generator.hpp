#pragma once

#include <cstdint>

#include "fuzz/artifact.hpp"

/// Seeded chaos-trial generation.
///
/// `generate_artifact(seed)` samples one randomized scenario (grid shape,
/// target speed, heartbeat period, duty cycle, channel model, window mode)
/// plus a fault plan of composed, overlapping faults (crash/reboot, radio
/// blackouts, sensor dropouts, burst partitions, leader harassment) with
/// randomized timing and victim sets. The artifact is a pure function of
/// the seed: trial N of a fuzzing campaign is `generate_artifact(base + N)`
/// and can be regenerated (or replayed from its JSON) without any saved RNG
/// state.
namespace et::fuzz {

struct GeneratorConfig {
  std::size_t min_faults = 1;
  std::size_t max_faults = 6;
  std::size_t min_rows = 2;
  std::size_t max_rows = 4;
  std::size_t min_cols = 6;
  std::size_t max_cols = 14;
  /// Probability knobs for the optional stressors.
  double p_ge_loss = 0.5;
  double p_reliable_transport = 0.35;
  double p_duty_cycle = 0.3;
  double p_harass = 0.35;
  double p_wide_windows = 0.5;
};

ReproArtifact generate_artifact(std::uint64_t seed,
                                const GeneratorConfig& config = {});

}  // namespace et::fuzz
