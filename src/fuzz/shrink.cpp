#include "fuzz/shrink.hpp"

#include <algorithm>
#include <vector>

namespace et::fuzz {

namespace {

/// Rebuilds a plan from an event subset. Partition-start events re-add
/// their original spec (indices re-densify, semantics are unchanged).
fault::FaultPlan rebuild_plan(
    const std::vector<fault::FaultEvent>& events,
    const std::vector<fault::PartitionSpec>& partitions) {
  fault::FaultPlan plan;
  for (const fault::FaultEvent& event : events) {
    if (event.kind == fault::FaultKind::kPartitionStart) {
      plan.partition_start(event.at, partitions[event.partition]);
    } else {
      plan.add(event.at, event.node, event.kind);
    }
  }
  return plan;
}

class Shrinker {
 public:
  Shrinker(const ReproArtifact& original, const StillFails& still_fails,
           const ShrinkOptions& options)
      : current_(original), still_fails_(still_fails), options_(options) {}

  ReproArtifact run() {
    bool progress = true;
    while (progress && !exhausted()) {
      progress = false;
      progress |= drop_events();
      progress |= simplify_scenario();
      progress |= shrink_grid();
      progress |= halve_times();
    }
    return current_;
  }

  ShrinkStats stats() const { return stats_; }

 private:
  bool exhausted() const { return stats_.attempts >= options_.max_attempts; }

  /// Runs the predicate on `candidate`; adopts it when it still fails.
  /// Structurally invalid candidates are rejected for free.
  bool attempt(const ReproArtifact& candidate) {
    if (exhausted()) return false;
    if (!candidate.plan.construction_problems().empty()) return false;
    if (!candidate.plan.validate(candidate.scenario.node_count()).empty()) {
      return false;
    }
    ++stats_.attempts;
    if (!still_fails_(candidate)) return false;
    current_ = candidate;
    ++stats_.accepted;
    return true;
  }

  ReproArtifact with_events(
      const std::vector<fault::FaultEvent>& events) const {
    ReproArtifact candidate = current_;
    candidate.plan = rebuild_plan(events, current_.plan.partitions());
    return candidate;
  }

  /// ddmin over the fault events: try dropping chunks, halving the chunk
  /// size until single events.
  bool drop_events() {
    bool any = false;
    std::size_t chunk = std::max<std::size_t>(
        1, current_.plan.events().size() / 2);
    while (!exhausted()) {
      const std::vector<fault::FaultEvent>& events =
          current_.plan.events();
      if (events.empty()) break;
      bool removed = false;
      for (std::size_t start = 0; start < events.size() && !exhausted();
           start += chunk) {
        std::vector<fault::FaultEvent> keep;
        keep.reserve(events.size());
        for (std::size_t i = 0; i < events.size(); ++i) {
          if (i < start || i >= start + chunk) keep.push_back(events[i]);
        }
        if (keep.size() == events.size()) continue;
        if (attempt(with_events(keep))) {
          removed = true;
          any = true;
          break;  // current_ changed; restart over the smaller plan
        }
      }
      if (removed) continue;
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return any;
  }

  /// Strips optional stressors one at a time.
  bool simplify_scenario() {
    bool any = false;
    if (current_.scenario.harass) {
      ReproArtifact candidate = current_;
      candidate.scenario.harass = false;
      any |= attempt(candidate);
    }
    if (current_.scenario.ge_loss) {
      ReproArtifact candidate = current_;
      candidate.scenario.ge_loss = false;
      any |= attempt(candidate);
    }
    if (current_.scenario.duty_cycle_awake_fraction < 1.0) {
      ReproArtifact candidate = current_;
      candidate.scenario.duty_cycle_awake_fraction = 1.0;
      any |= attempt(candidate);
    }
    if (current_.scenario.reliable_transport) {
      ReproArtifact candidate = current_;
      candidate.scenario.reliable_transport = false;
      any |= attempt(candidate);
    }
    return any;
  }

  /// Shrinks the deployment. Candidates whose plan references motes beyond
  /// the smaller grid are rejected by attempt()'s validation for free.
  bool shrink_grid() {
    bool any = false;
    bool progress = true;
    while (progress && !exhausted()) {
      progress = false;
      for (const std::size_t step : {std::size_t{4}, std::size_t{2},
                                     std::size_t{1}}) {
        if (current_.scenario.cols < 4 + step) continue;
        ReproArtifact candidate = current_;
        candidate.scenario.cols -= step;
        if (attempt(candidate)) {
          progress = true;
          any = true;
          break;
        }
      }
      if (progress) continue;
      if (current_.scenario.rows > 2) {
        ReproArtifact candidate = current_;
        candidate.scenario.rows -= 1;
        if (attempt(candidate)) {
          progress = true;
          any = true;
        }
      }
    }
    return any;
  }

  /// Narrows the fault window: first the whole plan pulled earlier (every
  /// time halved), then event by event.
  bool halve_times() {
    bool any = false;
    while (!exhausted()) {
      std::vector<fault::FaultEvent> events = current_.plan.events();
      bool meaningful = false;
      for (fault::FaultEvent& event : events) {
        const std::int64_t us = event.at.to_micros();
        if (us > Time::seconds(1).to_micros()) meaningful = true;
        event.at = Time::micros(us / 2);
      }
      if (!meaningful || !attempt(with_events(events))) break;
      any = true;
    }
    if (current_.plan.events().size() <= 8) {
      for (std::size_t i = 0;
           i < current_.plan.events().size() && !exhausted(); ++i) {
        std::vector<fault::FaultEvent> events = current_.plan.events();
        const std::int64_t us = events[i].at.to_micros();
        if (us <= Time::seconds(1).to_micros()) continue;
        events[i].at = Time::micros(us / 2);
        any |= attempt(with_events(events));
      }
    }
    return any;
  }

  ReproArtifact current_;
  const StillFails& still_fails_;
  ShrinkOptions options_;
  ShrinkStats stats_;
};

}  // namespace

ReproArtifact shrink_artifact(const ReproArtifact& original,
                              const StillFails& still_fails,
                              const ShrinkOptions& options,
                              ShrinkStats* stats) {
  Shrinker shrinker(original, still_fails, options);
  ReproArtifact shrunk = shrinker.run();
  if (stats != nullptr) *stats = shrinker.stats();
  return shrunk;
}

}  // namespace et::fuzz
