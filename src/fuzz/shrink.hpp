#pragma once

#include <cstddef>
#include <functional>

#include "fuzz/artifact.hpp"

/// Delta-debugging shrinker for chaos repro artifacts.
///
/// Given a failing artifact and a `still_fails` predicate (typically "the
/// trial still fails on the same oracle"), `shrink_artifact` greedily
/// minimizes the repro: ddmin-style fault-event removal (halving chunks
/// down to single events), scenario-stressor removal (harassment, burst
/// loss, duty cycling, transport), grid shrinking (fewer rows/columns),
/// and fault-time halving (pulling events earlier so the failure window
/// narrows). Every candidate is pre-validated against the candidate
/// deployment before it costs a trial, and the whole search is bounded by
/// `max_attempts` predicate evaluations — the result is the smallest
/// still-failing artifact found within budget, never worse than the input.
namespace et::fuzz {

using StillFails = std::function<bool(const ReproArtifact&)>;

struct ShrinkOptions {
  /// Predicate-evaluation budget (each evaluation is a full trial).
  std::size_t max_attempts = 160;
};

struct ShrinkStats {
  std::size_t attempts = 0;
  std::size_t accepted = 0;
};

ReproArtifact shrink_artifact(const ReproArtifact& original,
                              const StillFails& still_fails,
                              const ShrinkOptions& options = {},
                              ShrinkStats* stats = nullptr);

}  // namespace et::fuzz
