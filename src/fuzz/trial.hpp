#pragma once

#include <cstdint>
#include <string>

#include "fuzz/artifact.hpp"
#include "metrics/verdict.hpp"

/// One chaos trial under the stacked oracles.
///
/// `run_trial` executes the artifact twice — once on the serial canonical
/// kernel, once on `parallel:N` — and judges each run with:
///
///   - the runtime protocol-invariant oracle (metrics/invariants.hpp),
///   - serve-answer validation: the sharded track store's `latest`,
///     `history`, and `tracks_in_region` answers are checked against the
///     ingest tape (the in-order ground truth of every admitted report),
///   - the simulator's no-progress watchdog (event-count and wall-clock
///     budgets per simulated second),
///
/// and then byte-diffs the two runs' metric digests — deterministic
/// {config, seed, metric, value} rows covering tracking, group-protocol,
/// medium, serving-tier, and per-report track-tape state — as the
/// serial-vs-parallel differential oracle. Any divergence names the first
/// differing row.
namespace et::fuzz {

struct TrialOptions {
  /// Worker threads for the parallel half of the differential.
  unsigned threads = 2;
  /// Run the parallel half at all. The shrinker may disable it when
  /// minimizing a failure the serial run already exhibits.
  bool differential = true;
  /// Watchdog budgets (generous: an order of magnitude above what a
  /// healthy trial of the largest generated scenario needs).
  std::uint64_t max_events_per_sim_second = 2'000'000;
  std::uint64_t max_wall_ms_per_sim_second = 20'000;
};

struct TrialResult {
  metrics::ChaosVerdict verdict;
  /// Metric digest of the serial run (and, when it matched, the parallel
  /// run). Deterministic for (artifact, options).
  std::string digest;
  double sim_seconds = 0.0;
  std::uint64_t faults_scheduled = 0;
};

TrialResult run_trial(const ReproArtifact& artifact,
                      const TrialOptions& options = {});

/// Whether `verdict`'s first failure matches the artifact's
/// `expect_failure` contract: an empty expectation means the verdict must
/// be clean; otherwise the first failing oracle's name must start with the
/// expectation (after stripping a "serial/"/"parallel/" prefix, so
/// expectations stay kernel-agnostic).
bool matches_expectation(const ReproArtifact& artifact,
                         const metrics::ChaosVerdict& verdict);

}  // namespace et::fuzz
