#pragma once

#include <cstdint>
#include <string>

#include "fault/fault_plan.hpp"
#include "scenario/tank.hpp"
#include "util/expected.hpp"
#include "util/json.hpp"
#include "util/time.hpp"

/// Self-contained chaos-trial repro artifacts.
///
/// A chaos trial is fully determined by (seed, scenario knobs, fault plan):
/// re-running the same triple reproduces the run bit for bit on either
/// kernel. `ReproArtifact` is that triple plus provenance, with an exact
/// JSON round-trip (times as integer microseconds, objects rendered in a
/// fixed member order) so a failing trial can be written to disk, committed
/// into tests/chaos_corpus/, shrunk offline, and replayed byte-for-byte by
/// `chaos_fuzz --replay` or the corpus-replay test family.
namespace et::fuzz {

/// The scenario knobs the fuzzer randomizes, projected onto
/// TankScenarioParams by to_params(). Kept separate from the full params
/// struct so an artifact only carries what the generator actually varies —
/// everything else is pinned by to_params() and versioned by the artifact
/// format tag.
struct FuzzScenario {
  std::size_t rows = 3;
  std::size_t cols = 10;
  double speed_hops_per_s = 1.0;
  double track_y = 0.5;
  Duration heartbeat_period = Duration::millis(500);
  /// Awake fraction for unengaged motes; 1.0 = no duty cycling.
  double duty_cycle_awake_fraction = 1.0;
  /// Gilbert–Elliott burst loss (~20% effective) on the channel.
  bool ge_loss = false;
  /// Reliable (acked) transport under the report path.
  bool reliable_transport = false;
  /// Wide-window canonical semantics (the differential covers both modes).
  bool wide_windows = true;
  Duration report_period = Duration::seconds(1);
  Duration cooldown = Duration::seconds(3);
  /// Dynamic leader harassment (crash whoever currently leads), layered on
  /// top of the static fault plan.
  bool harass = false;
  Duration harass_period = Duration::seconds(3);
  Duration harass_downtime = Duration::seconds(1);

  std::size_t node_count() const { return rows * cols; }

  /// Rough simulated length of the run (traverse + cooldown); the
  /// generator keeps fault times inside this horizon.
  Duration horizon() const;

  /// Full scenario params for one run: directory-backed epoch fencing on,
  /// deterministic for (scenario, seed, kernel).
  scenario::TankScenarioParams to_params(std::uint64_t seed,
                                         const sim::KernelConfig& kernel) const;

  util::Json to_json() const;
  static Expected<FuzzScenario> from_json(const util::Json& doc);
};

struct ReproArtifact {
  std::uint64_t seed = 1;
  FuzzScenario scenario;
  fault::FaultPlan plan;
  /// Provenance: generator seed/trial index, shrink lineage. Free-form.
  std::string note;
  /// Expected replay outcome: empty = the trial must pass every oracle
  /// (regression corpus on a healthy HEAD). Otherwise the first failing
  /// oracle's name must start with this string (known-bug repros, and the
  /// scratch-branch "re-introduced fault is caught" check).
  std::string expect_failure;

  util::Json to_json() const;
  std::string to_json_string() const { return to_json().dump(2) + "\n"; }
  static Expected<ReproArtifact> from_json(const util::Json& doc);
  static Expected<ReproArtifact> from_json_string(std::string_view text);
};

}  // namespace et::fuzz
