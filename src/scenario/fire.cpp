#include "scenario/fire.hpp"

namespace et::scenario {

FireScenario::FireScenario(const FireScenarioParams& params)
    : params_(params),
      sim_(params.seed),
      env_(sim_.make_rng("environment")),
      field_(env::Field::grid(params.rows, params.cols)) {
  core::SystemConfig config;
  config.radio = params.radio;
  config.radio.comm_radius = params.comm_radius;
  config.middleware.group = params.group;
  // Fires grow to ~2.5 units; scale the identity radii accordingly.
  config.middleware.group.suppression_radius = 4.0;
  config.middleware.group.wait_radius = 4.0;
  config.middleware.enable_directory = true;
  config.middleware.enable_transport = true;
  config.kernel = params.kernel;

  system_ = std::make_unique<core::EnviroTrackSystem>(sim_, env_, field_,
                                                      config);
  system_->senses().add("fire_sensor", core::sense_target("fire"));

  core::ContextTypeSpec spec;
  spec.name = "fire";
  spec.activation = "fire_sensor";
  spec.variables.push_back(core::AggregateVarSpec{
      "intensity", "avg", "temperature", params.freshness,
      params.critical_mass});
  spec.variables.push_back(core::AggregateVarSpec{
      "seat", "centroid", "temperature", params.freshness,
      params.critical_mass});

  core::ObjectSpec monitor;
  monitor.name = "monitor";
  core::MethodSpec alarm;
  alarm.name = "alarm";
  alarm.invocation.kind = core::InvocationSpec::Kind::kCondition;
  const double threshold = params.alarm_threshold;
  alarm.invocation.condition = [threshold](core::TrackingContext& ctx) {
    auto intensity = ctx.read_scalar("intensity");
    return intensity && *intensity > threshold;
  };
  alarm.body = [this](core::TrackingContext& ctx) {
    // Read in mote context, append via the op journal: under the parallel
    // kernel the alarm fires on a tile thread, and journaling keeps the
    // alarm log single-threaded and in canonical event order.
    const FireEvent event{
        ctx.now(), ctx.label(),
        ctx.read_vector("seat").value_or(ctx.node_position()),
        ctx.read_scalar("intensity").value_or(0.0)};
    sim_.post_op([this, event] { alarms_.push_back(event); });
  };
  monitor.methods.push_back(std::move(alarm));
  spec.objects.push_back(std::move(monitor));

  fire_type_ = system_->add_context_type(std::move(spec));
  system_->start();
  system_->add_group_observer(&event_log_);
}

TargetId FireScenario::ignite(Vec2 seat, Time ignites, double initial_radius,
                              double growth_rate, double max_radius,
                              Time extinguished) {
  env::Target fire;
  fire.type = "fire";
  fire.trajectory = std::make_unique<env::StationaryTrajectory>(seat);
  fire.radius = env::RadiusProfile::growing(initial_radius, growth_rate,
                                            max_radius);
  fire.emissions["temperature"] = 400.0;
  fire.appears = ignites;
  fire.disappears = extinguished;
  return env_.add_target(std::move(fire));
}

std::vector<core::DirectoryEntry> FireScenario::where_are_the_fires(
    NodeId asker) {
  std::vector<core::DirectoryEntry> result;
  bool done = false;
  {
    // The query schedules mote-side work (send + timeout) from outside any
    // event; attribute it to the asker so canonical keys are identical on
    // every kernel.
    sim::ExecutingOwnerScope scope(sim_,
                                   static_cast<std::uint32_t>(asker.value()));
    system_->stack(asker).directory()->query(
        fire_type_,
        [&](bool ok, const std::vector<core::DirectoryEntry>& entries) {
          if (ok) result = entries;
          done = true;
        });
  }
  // Drive the simulation until the callback fires (reply or timeout).
  while (!done) system_->run_for(Duration::millis(200));
  return result;
}

}  // namespace et::scenario
