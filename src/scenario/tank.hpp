#pragma once

#include <memory>
#include <optional>

#include "core/system.hpp"
#include "metrics/channel_report.hpp"
#include "metrics/coherence.hpp"
#include "metrics/event_log.hpp"
#include "metrics/track_recorder.hpp"
#include "scenario/cross_traffic.hpp"
#include "scenario/units.hpp"

/// The paper's tank-tracking case study (§6.1) and stress-test rig (§6.2).
///
/// A rectangular mote grid, a single target crossing it on a horizontal
/// line, a "tracker" context type with the Fig. 2 declaration (average
/// position, confidence 2, freshness 1 s; a reporter object sending the
/// location to a base-station pursuer), and full instrumentation:
/// coherence/handover accounting, the reported-vs-real track, and channel
/// statistics.
namespace et::scenario {

struct TankScenarioParams {
  // Deployment.
  std::size_t rows = 3;
  std::size_t cols = 12;
  double comm_radius = 6.0;
  double sensing_radius = kTankSensingRadius;

  // Target motion: crosses from left of the field to right of it along
  // y = track_y, at `speed_hops_per_s`.
  double speed_hops_per_s = kmh_to_hops_per_s(kTankFastKmh);
  double track_y = 0.5;

  // Middleware knobs under study.
  core::GroupConfig group;
  radio::RadioConfig radio;
  node::CpuConfig cpu;
  core::DirectoryConfig directory;
  bool enable_directory = false;  // pure §6 runs do not use the directory
  bool enable_transport = false;

  // Fig. 2 context declaration.
  Duration aggregate_freshness = Duration::seconds(1);
  std::size_t critical_mass = 2;
  Duration report_period = Duration::seconds(5);

  /// Base station (pursuer interface) node; defaults to mote 0 (a corner).
  std::optional<NodeId> base_station = NodeId{0};

  /// Optional §6.2 background noise.
  std::optional<CrossTrafficConfig> cross_traffic;

  /// Radio duty cycling (energy extension): awake fraction for unengaged
  /// motes; 1.0 keeps all radios always on (the paper's prototype).
  double duty_cycle_awake_fraction = 1.0;

  /// Extra simulated time after the target leaves the field.
  Duration cooldown = Duration::seconds(3);
  Duration coherence_sample_period = Duration::millis(100);

  /// Kernel selection: legacy serial (default), canonical serial oracle, or
  /// the parallel tiled kernel.
  sim::KernelConfig kernel;

  std::uint64_t seed = 1;
};

struct TankRunResult {
  metrics::TargetTrackingStats tracking;
  radio::MediumStats medium;
  metrics::ChannelReport channel;
  std::vector<metrics::TrackPoint> track;
  std::size_t track_labels = 0;  // distinct labels seen by the pursuer
  core::GroupStats groups;       // summed over all motes
  node::Cpu::Stats cpu;          // summed over all motes
  Duration elapsed;
  double speed_hops_per_s = 0.0;

  /// §6.2 trackability criterion: context label coherence was ensured —
  /// one single label tracked the target across the whole traverse — and
  /// the target was actually tracked a meaningful fraction of the time.
  bool trackable(double min_tracked_fraction = 0.5) const {
    return tracking.distinct_labels == 1 &&
           tracking.tracked_fraction() >= min_tracked_fraction;
  }
};

/// A fully assembled tank run. Kept as an object so tests and examples can
/// poke at the system mid-run; benches mostly call run_tank_scenario().
class TankScenario {
 public:
  explicit TankScenario(const TankScenarioParams& params);

  /// Runs to completion (target crosses + cooldown) and returns the result.
  TankRunResult run();

  /// Advances the simulation by `span` without finishing.
  void run_for(Duration span) { system_->run_for(span); }

  sim::Simulator& sim() { return sim_; }
  core::EnviroTrackSystem& system() { return *system_; }
  env::Environment& environment() { return env_; }
  metrics::CoherenceMonitor& monitor() { return *monitor_; }
  metrics::EventLog& events() { return event_log_; }
  TargetId target() const { return target_; }
  core::TypeIndex tracker_type() const { return tracker_type_; }
  Time target_arrival() const { return arrival_; }
  const TankScenarioParams& params() const { return params_; }

  /// Collects the result so far (usable before or after run()).
  TankRunResult result() const;

 private:
  TankScenarioParams params_;
  sim::Simulator sim_;
  env::Environment env_;
  env::Field field_;
  std::unique_ptr<core::EnviroTrackSystem> system_;
  std::unique_ptr<metrics::CoherenceMonitor> monitor_;
  std::unique_ptr<metrics::TrackRecorder> recorder_;
  metrics::EventLog event_log_;
  TargetId target_;
  core::TypeIndex tracker_type_ = 0;
  Time arrival_;
  Time end_;
};

TankRunResult run_tank_scenario(const TankScenarioParams& params);

/// Averages channel reports over `runs` independent seeds (Table 1 is
/// "averaged over three independent runs").
metrics::ChannelReport average_channel_report(TankScenarioParams params,
                                              int runs);

}  // namespace et::scenario
