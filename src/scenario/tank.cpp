#include "scenario/tank.hpp"

#include <cassert>

namespace et::scenario {

namespace {

/// Builds the Fig. 2 "tracker" context declaration in spec form.
core::ContextTypeSpec make_tracker_spec(const TankScenarioParams& params) {
  core::ContextTypeSpec spec;
  spec.name = "tracker";
  spec.activation = "magnetic_sensor_reading";

  core::AggregateVarSpec location;
  location.name = "location";
  location.aggregation = "avg";
  location.sensor = "position";
  location.freshness = params.aggregate_freshness;
  location.critical_mass = params.critical_mass;
  spec.variables.push_back(location);

  core::ObjectSpec reporter;
  reporter.name = "reporter";
  core::MethodSpec report;
  report.name = "report";
  report.invocation.kind = core::InvocationSpec::Kind::kTimer;
  report.invocation.period = params.report_period;
  if (params.base_station) {
    const NodeId pursuer = *params.base_station;
    report.body = [pursuer](core::TrackingContext& ctx) {
      // MySend(pursuer, self.label, location): only confirmed sitings are
      // reported (the read is null below critical mass).
      if (auto location = ctx.read_vector("location")) {
        ctx.send_to_node(pursuer, "track", {location->x, location->y});
      }
    };
  }
  reporter.methods.push_back(std::move(report));
  spec.objects.push_back(std::move(reporter));
  return spec;
}

}  // namespace

TankScenario::TankScenario(const TankScenarioParams& params)
    : params_(params),
      sim_(params.seed),
      env_(sim_.make_rng("environment")),
      field_(env::Field::grid(params.rows, params.cols)) {
  // Target: enters one sensing radius left of the field, exits one to the
  // right, moving along y = track_y.
  const double margin = params.sensing_radius + 0.5;
  const Vec2 from{field_.bounds().min.x - margin, params.track_y};
  const Vec2 to{field_.bounds().max.x + margin, params.track_y};
  auto trajectory = std::make_unique<env::LinearTrajectory>(
      from, to, params.speed_hops_per_s);
  arrival_ = trajectory->arrival_time();
  end_ = arrival_ + params.cooldown;

  env::Target tank;
  tank.type = "tracker";
  tank.trajectory = std::move(trajectory);
  tank.radius = env::RadiusProfile::constant(params.sensing_radius);
  tank.emissions["magnetic"] = 40.0;  // ~40x an average vehicle (§6.1)
  target_ = env_.add_target(std::move(tank));

  core::SystemConfig config;
  config.radio = params.radio;
  config.radio.comm_radius = params.comm_radius;
  config.cpu = params.cpu;
  config.middleware.group = params.group;
  // Label-identity radii scale with the sensory signature: two estimates
  // within one group diameter plausibly track the same entity.
  config.middleware.group.suppression_radius =
      std::max(params.group.suppression_radius, 2.0 * params.sensing_radius);
  config.middleware.group.wait_radius = std::max(
      params.group.wait_radius, params.sensing_radius + 1.5);
  config.middleware.directory = params.directory;
  config.middleware.enable_directory = params.enable_directory;
  config.middleware.enable_transport = params.enable_transport;
  config.kernel = params.kernel;
  if (params.duty_cycle_awake_fraction < 1.0) {
    config.middleware.enable_duty_cycle = true;
    config.middleware.duty_cycle.awake_fraction =
        params.duty_cycle_awake_fraction;
  }

  system_ = std::make_unique<core::EnviroTrackSystem>(sim_, env_, field_,
                                                      config);
  system_->senses().add("magnetic_sensor_reading",
                        core::sense_target("tracker"));
  tracker_type_ = system_->add_context_type(make_tracker_spec(params));
  system_->start();
  system_->add_group_observer(&event_log_);

  monitor_ = std::make_unique<metrics::CoherenceMonitor>(
      *system_, params.coherence_sample_period);
  if (params.base_station) {
    recorder_ = std::make_unique<metrics::TrackRecorder>(
        *system_, *params.base_station, target_, "track");
  }
  if (params.cross_traffic) {
    start_cross_traffic(*system_, *params.cross_traffic);
  }
}

TankRunResult TankScenario::run() {
  system_->run_until(end_);
  return result();
}

TankRunResult TankScenario::result() const {
  TankRunResult result;
  result.tracking = monitor_->stats_for(target_);
  result.medium = system_->medium().stats();
  result.elapsed = sim_.now() - Time::origin();
  result.channel = metrics::ChannelReport::from(
      result.medium, result.elapsed, system_->config().radio.bitrate_bps);
  if (recorder_) {
    result.track = recorder_->points();
    result.track_labels = recorder_->distinct_labels();
  }
  for (std::size_t i = 0; i < system_->node_count(); ++i) {
    const auto& gs = system_->stack(NodeId{i}).groups().stats();
    result.groups.heartbeats_sent += gs.heartbeats_sent;
    result.groups.heartbeats_relayed += gs.heartbeats_relayed;
    result.groups.reports_sent += gs.reports_sent;
    result.groups.reports_received += gs.reports_received;
    result.groups.labels_created += gs.labels_created;
    result.groups.takeovers += gs.takeovers;
    result.groups.relinquishes += gs.relinquishes;
    result.groups.yields += gs.yields;
    result.groups.suppressions += gs.suppressions;
    result.groups.joins += gs.joins;

    const auto& cs = system_->network().mote(NodeId{i}).cpu().stats();
    result.cpu.posted += cs.posted;
    result.cpu.executed += cs.executed;
    result.cpu.dropped += cs.dropped;
    result.cpu.busy += cs.busy;
  }
  result.speed_hops_per_s = params_.speed_hops_per_s;
  return result;
}

TankRunResult run_tank_scenario(const TankScenarioParams& params) {
  TankScenario scenario(params);
  return scenario.run();
}

metrics::ChannelReport average_channel_report(TankScenarioParams params,
                                              int runs) {
  assert(runs > 0);
  metrics::ChannelReport sum;
  for (int i = 0; i < runs; ++i) {
    params.seed = params.seed * 7919 + 17;
    const TankRunResult result = run_tank_scenario(params);
    sum.heartbeat_loss_pct += result.channel.heartbeat_loss_pct;
    sum.report_loss_pct += result.channel.report_loss_pct;
    sum.link_utilization_pct += result.channel.link_utilization_pct;
  }
  sum.heartbeat_loss_pct /= runs;
  sum.report_loss_pct /= runs;
  sum.link_utilization_pct /= runs;
  return sum;
}

}  // namespace et::scenario
