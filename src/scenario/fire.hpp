#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "metrics/event_log.hpp"

/// Fire-monitoring scenario (the paper's second motivating application).
///
/// Stationary, growing phenomena of type "fire": activation is the §3.1
/// example condition (a hot thermometer), context state tracks intensity
/// and the heat-weighted seat, alarms fire on an intensity threshold, and
/// the directory answers "where are all the fires?". Used by integration
/// tests and the fire_monitoring example.
namespace et::scenario {

struct FireScenarioParams {
  std::size_t rows = 15;
  std::size_t cols = 15;
  double comm_radius = 6.0;
  core::GroupConfig group;
  radio::RadioConfig radio;

  /// Aggregate QoS for intensity/seat.
  Duration freshness = Duration::seconds(3);
  std::size_t critical_mass = 3;
  /// Alarm threshold on the intensity aggregate.
  double alarm_threshold = 120.0;

  /// Kernel selection (legacy serial / canonical serial / parallel).
  sim::KernelConfig kernel;

  std::uint64_t seed = 1;
};

struct FireEvent {
  Time time;
  LabelId label;
  Vec2 seat;
  double intensity;
};

class FireScenario {
 public:
  explicit FireScenario(const FireScenarioParams& params);

  /// Ignites a fire at `seat` growing from `initial_radius` by
  /// `growth_rate` (units/s) up to `max_radius`, burning during
  /// [ignites, extinguished).
  TargetId ignite(Vec2 seat, Time ignites, double initial_radius = 1.0,
                  double growth_rate = 0.01, double max_radius = 2.5,
                  Time extinguished = Time::max());

  void extinguish(TargetId fire) {
    env_.remove_target_at(fire, sim_.now());
  }

  void run(double seconds) { system_->run_for(Duration::seconds(seconds)); }

  /// Directory sweep from `asker`: blocks the simulation until the reply
  /// (or timeout) and returns the entries.
  std::vector<core::DirectoryEntry> where_are_the_fires(NodeId asker);

  const std::vector<FireEvent>& alarms() const { return alarms_; }
  sim::Simulator& sim() { return sim_; }
  core::EnviroTrackSystem& system() { return *system_; }
  env::Environment& environment() { return env_; }
  metrics::EventLog& events() { return event_log_; }
  core::TypeIndex fire_type() const { return fire_type_; }

 private:
  FireScenarioParams params_;
  sim::Simulator sim_;
  env::Environment env_;
  env::Field field_;
  std::unique_ptr<core::EnviroTrackSystem> system_;
  metrics::EventLog event_log_;
  std::vector<FireEvent> alarms_;
  core::TypeIndex fire_type_ = 0;
};

}  // namespace et::scenario
