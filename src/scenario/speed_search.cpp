#include "scenario/speed_search.hpp"

namespace et::scenario {

bool speed_trackable(const SpeedSearchParams& params, double speed) {
  int successes = 0;
  for (int i = 0; i < params.seeds; ++i) {
    TankScenarioParams run = params.base;
    run.speed_hops_per_s = speed;
    run.seed = params.base.seed + static_cast<std::uint64_t>(i) * 1000003;
    const TankRunResult result = run_tank_scenario(run);
    if (result.trackable(params.min_tracked_fraction)) ++successes;
    // Early exits once the majority is decided either way.
    const int remaining = params.seeds - i - 1;
    if (successes * 2 > params.seeds) return true;
    if ((successes + remaining) * 2 <= params.seeds) return false;
  }
  return successes * 2 > params.seeds;
}

double find_max_trackable_speed(const SpeedSearchParams& params) {
  if (!speed_trackable(params, params.lo)) return 0.0;
  if (speed_trackable(params, params.hi)) return params.hi;
  double lo = params.lo;  // trackable
  double hi = params.hi;  // not trackable
  while (hi - lo > params.resolution) {
    const double mid = 0.5 * (lo + hi);
    if (speed_trackable(params, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace et::scenario
