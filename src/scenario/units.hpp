#pragma once

/// Unit conversions for the paper's tank case study (§6.1).
///
/// The deployed grid spacing — one simulation grid unit — corresponds to
/// 140 m at full scale (the per-hop distance chosen so a target detectable
/// at 100 m is always in range of some sensor). Target speeds are quoted in
/// km/hr in §6.1 and in hops/s in §6.2.
namespace et::scenario {

/// Full-scale metres per grid unit (per hop).
inline constexpr double kMetersPerHop = 140.0;

/// km/hr -> grid units (hops) per second.
inline constexpr double kmh_to_hops_per_s(double kmh) {
  return kmh * 1000.0 / 3600.0 / kMetersPerHop;
}

/// hops/s -> km/hr.
inline constexpr double hops_per_s_to_kmh(double hops) {
  return hops * kMetersPerHop * 3600.0 / 1000.0;
}

/// Seconds the target needs to cover one hop.
inline constexpr double seconds_per_hop(double hops_per_s) {
  return 1.0 / hops_per_s;
}

/// The paper's reference speeds: 10 s/hop ≈ 50 km/hr, 15 s/hop ≈ 33 km/hr.
inline constexpr double kTankFastKmh = 50.0;
inline constexpr double kTankSlowKmh = 33.0;

/// T-72 magnetic signature: detectable at ~100 m ≈ 0.7 hop; the testbed
/// emulated an effective sensing radius of about one grid unit.
inline constexpr double kTankSensingRadius = 1.0;

}  // namespace et::scenario
