#pragma once

#include "scenario/tank.hpp"

/// Maximum-trackable-speed search (§6.2).
///
/// "The maximum trackable speed is the highest target speed at which the
/// single group abstraction is maintained" — i.e. context-label coherence
/// holds across the entire traverse. The search runs the tank scenario at
/// candidate speeds (majority over several seeds, since the channel is
/// stochastic) and bisects to the highest trackable speed.
namespace et::scenario {

struct SpeedSearchParams {
  /// Scenario template; its `speed_hops_per_s` is overwritten per probe.
  TankScenarioParams base;
  /// Search bracket, in hops/s.
  double lo = 0.05;
  double hi = 6.0;
  /// Bisection stops at this resolution (hops/s).
  double resolution = 0.1;
  /// Independent runs per probed speed; trackable = majority.
  int seeds = 3;
  /// Minimum fraction of samples with the target tracked.
  double min_tracked_fraction = 0.5;
};

/// True when the majority of seeded runs at `speed` keep coherence.
bool speed_trackable(const SpeedSearchParams& params, double speed);

/// Highest trackable speed in [lo, hi], or 0 when even `lo` fails.
double find_max_trackable_speed(const SpeedSearchParams& params);

}  // namespace et::scenario
