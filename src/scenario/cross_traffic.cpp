#include "scenario/cross_traffic.hpp"

namespace et::scenario {

std::vector<NodeId> start_cross_traffic(core::EnviroTrackSystem& system,
                                        const CrossTrafficConfig& config) {
  std::vector<NodeId> senders;
  if (config.senders == 0 || system.node_count() == 0) return senders;
  const std::size_t stride =
      std::max<std::size_t>(1, system.node_count() / config.senders);
  for (std::size_t i = 0; i < system.node_count() && senders.size() < config.senders;
       i += stride) {
    senders.push_back(NodeId{i});
  }
  for (NodeId id : senders) {
    auto& mote = system.network().mote(id);
    // Stagger starts so the generators do not synchronize.
    const Duration phase = config.period * mote.rng().next_double();
    mote.every(config.period + phase, config.period,
               [&mote, bytes = config.payload_bytes] {
                 mote.broadcast(radio::MsgType::kCrossTraffic,
                                std::make_shared<CrossTrafficPayload>(bytes));
               });
  }
  return senders;
}

}  // namespace et::scenario
