#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"

/// Background "noise" traffic (§6.2).
///
/// The paper repeats the Fig. 5 stress test "in the presence of a
/// substantial amount of cross traffic ... exchanged between motes that do
/// not participate in the EnviroTrack protocol" to show the bottleneck is
/// CPU, not bandwidth. This generator makes selected motes broadcast
/// fixed-size junk frames on a period.
namespace et::scenario {

class CrossTrafficPayload final : public radio::Payload {
 public:
  explicit CrossTrafficPayload(std::size_t bytes) : bytes_(bytes) {}
  std::size_t size_bytes() const override { return bytes_; }

 private:
  std::size_t bytes_;
};

struct CrossTrafficConfig {
  /// How many motes emit noise (spread evenly across the field).
  std::size_t senders = 8;
  Duration period = Duration::millis(250);
  std::size_t payload_bytes = 24;
};

/// Starts the generators on `system` (must be started). Senders are chosen
/// evenly across node ids. Returns the chosen sender ids.
std::vector<NodeId> start_cross_traffic(core::EnviroTrackSystem& system,
                                        const CrossTrafficConfig& config);

}  // namespace et::scenario
