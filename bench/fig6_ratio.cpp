/// Figure 6 — "Effect of Sensory Radius on Maximum Trackable Speed".
///
/// Maximum trackable speed versus the ratio of communication radius (CR) to
/// sensing radius (SR), using the leadership-relinquish optimisation, for
/// two event sizes. Paper shape: for a given CR:SR ratio, larger events
/// (bigger SR) are trackable at higher speeds (fewer handovers per
/// distance); the architecture breaks down when CR:SR drops below 1, since
/// nodes outside the leader's radio range sense the event and form spurious
/// concurrent groups.

#include <cstdlib>
#include <iterator>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/sweep_runner.hpp"
#include "metrics/trace.hpp"
#include "scenario/speed_search.hpp"

namespace {

using namespace et;
using namespace et::scenario;

double measure(double sensing_radius, double ratio, int seeds) {
  SpeedSearchParams search;
  search.base.cols = 20;
  search.base.rows = 2 * static_cast<std::size_t>(sensing_radius) + 1;
  search.base.sensing_radius = sensing_radius;
  search.base.track_y = sensing_radius - 0.5;
  search.base.comm_radius = ratio * sensing_radius;
  search.base.group.relinquish_enabled = true;
  search.base.group.heartbeat_period = Duration::seconds(0.5);
  // Fast targets outrun a tight wait-memory gate (the position estimate
  // lags by up to speed x freshness); widen it with the event size.
  search.base.group.wait_radius = 2.0 * sensing_radius + 2.5;
  // Groups can span more than one radio hop at low CR:SR; members re-flood
  // heartbeats to keep the group connected ("All members of a sensor group
  // can communicate with each other possibly using multiple hops through
  // other members", §3.2.1).
  search.base.group.member_relay_heartbeats = true;
  search.base.base_station.reset();
  search.lo = 0.1;
  search.hi = 6.0;
  search.resolution = 0.15;
  search.seeds = seeds;
  search.min_tracked_fraction = 0.3;
  return find_max_trackable_speed(search);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 6: effect of sensory radius on max trackable speed",
      "ICDCS'04 EnviroTrack, Fig. 6 (§6.2)");
  const int seeds = bench::seeds_per_point(3);
  std::printf("(relinquish optimisation on; %d runs per probe, "
              "%u sweep threads)\n", seeds, bench::sweep_threads());

  const double ratios[] = {0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0};
  const double radii[] = {1.0, 2.0};
  constexpr std::size_t kRatioCount = std::size(ratios);

  // All (sensing radius, ratio) points are independent; sweep them in
  // parallel, then print in the figure's order.
  const std::vector<double> flat = bench::run_sweep<double>(
      std::size(radii) * kRatioCount, [&](std::size_t job) {
        return measure(radii[job / kRatioCount], ratios[job % kRatioCount],
                       seeds);
      });

  std::printf("\n  CR:SR ratio:       ");
  for (double r : ratios) std::printf("%7.2f", r);
  std::vector<std::vector<double>> curves;
  for (std::size_t s = 0; s < std::size(radii); ++s) {
    std::printf("\n  SR=%.0f max (h/s):  ", radii[s]);
    curves.emplace_back(flat.begin() + s * kRatioCount,
                        flat.begin() + (s + 1) * kRatioCount);
    for (double speed : curves.back()) std::printf("%7.2f", speed);
  }

  if (const char* dir = std::getenv("ET_BENCH_CSV_DIR")) {
    const std::string path = std::string(dir) + "/fig6_ratio.csv";
    const std::string csv = et::metrics::series_csv(
        "cr_sr_ratio", {ratios, ratios + std::size(ratios)},
        {{"sr1", curves[0]}, {"sr2", curves[1]}});
    if (et::metrics::write_file(path, csv)) {
      std::printf("\n  wrote %s\n", path.c_str());
    }
  }

  std::printf(
      "\n\n  paper shape: increases with the ratio; larger SR dominates at\n"
      "  equal ratio; collapse below CR:SR = 1.\n");
  return 0;
}
