#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

/// Shared helpers for the figure/table reproduction binaries.
namespace et::bench {

/// Seeds per measured point; override with ET_BENCH_SEEDS=n (smaller is
/// faster, noisier).
inline int seeds_per_point(int fallback = 3) {
  if (const char* env = std::getenv("ET_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

}  // namespace et::bench
