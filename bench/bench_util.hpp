#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

/// Shared helpers for the figure/table reproduction binaries.
namespace et::bench {

/// Accumulates machine-readable {config, seed, metric, value} rows and
/// renders them as a JSON array — the persisted BENCH_*.json format that
/// lets the perf/robustness trajectory survive repo re-anchors. Rows are
/// appended in deterministic (job) order so serial and parallel sweeps
/// produce byte-identical files.
class JsonRows {
 public:
  void add(const std::string& config, std::uint64_t seed,
           const std::string& metric, double value) {
    // Only the double goes through a bounded snprintf; the row itself is
    // assembled as a std::string so an arbitrarily long config or metric
    // name can never truncate the row and corrupt the JSON file.
    // JSON has no NaN/Inf literal; non-finite metric values (e.g. the NaN
    // mean_error of a run with zero reports) become null.
    char num[32];
    if (std::isfinite(value)) {
      std::snprintf(num, sizeof(num), "%.6g", value);
    } else {
      std::snprintf(num, sizeof(num), "null");
    }
    std::string row = "  {\"config\": \"";
    row += config;
    row += "\", \"seed\": ";
    row += std::to_string(seed);
    row += ", \"metric\": \"";
    row += metric;
    row += "\", \"value\": ";
    row += num;
    row += "}";
    rows_.push_back(std::move(row));
  }

  std::string render() const {
    std::string out = "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += rows_[i];
      out += i + 1 < rows_.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
  }

  bool empty() const { return rows_.empty(); }

 private:
  std::vector<std::string> rows_;
};

/// Seeds per measured point; override with ET_BENCH_SEEDS=n (smaller is
/// faster, noisier).
inline int seeds_per_point(int fallback = 3) {
  if (const char* env = std::getenv("ET_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

}  // namespace et::bench
