#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/kernel_config.hpp"

/// Shared helpers for the figure/table reproduction binaries.
namespace et::bench {

/// Parses an ET_KERNEL-style kernel selector into `*kernel`:
///   ""          / "legacy"  -> legacy serial engine (the seed's order)
///   "serial"                -> canonical-order serial oracle
///   "parallel"              -> tiled parallel kernel, default threads
///   "parallel:N"            -> tiled parallel kernel, N worker threads
/// Returns false (and fills `*error` when non-null) on anything else —
/// including `parallel:0`, negative, or non-numeric thread counts, which
/// must fail loudly: a sweep silently falling back to a default thread
/// count would benchmark the wrong configuration.
inline bool parse_kernel_selector(const std::string& value,
                                  sim::KernelConfig* kernel,
                                  std::string* error = nullptr) {
  *kernel = sim::KernelConfig{};
  if (value.empty() || value == "legacy") return true;
  if (value == "serial") {
    kernel->canonical_order = true;
    return true;
  }
  if (value == "parallel") {
    kernel->use_parallel_kernel = true;
    return true;
  }
  const std::string prefix = "parallel:";
  if (value.rfind(prefix, 0) == 0) {
    const std::string spec = value.substr(prefix.size());
    if (spec.empty() ||
        spec.find_first_not_of("0123456789") != std::string::npos) {
      if (error) {
        *error = "ET_KERNEL '" + value +
                 "': thread count must be a positive integer";
      }
      return false;
    }
    // strtoul saturates on overflow, so absurd counts also land here.
    const unsigned long threads = std::strtoul(spec.c_str(), nullptr, 10);
    if (threads == 0 || threads > 1024) {
      if (error) {
        *error = "ET_KERNEL '" + value +
                 "': thread count must be between 1 and 1024";
      }
      return false;
    }
    kernel->use_parallel_kernel = true;
    kernel->threads = static_cast<unsigned>(threads);
    return true;
  }
  if (error) {
    *error = "unknown ET_KERNEL '" + value +
             "' (expected legacy, serial, parallel, or parallel:N)";
  }
  return false;
}

/// Kernel selection from the ET_KERNEL environment variable (unset/empty =
/// legacy engine). Exits with the parser's message on a malformed value.
/// "serial" and "parallel:N" runs print byte-identical output — CI diffs
/// them.
inline sim::KernelConfig kernel_from_env() {
  sim::KernelConfig kernel;
  const char* env = std::getenv("ET_KERNEL");
  if (!env) return kernel;
  std::string error;
  if (!parse_kernel_selector(env, &kernel, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::exit(2);
  }
  return kernel;
}

/// Accumulates machine-readable {config, seed, metric, value} rows and
/// renders them as a JSON array — the persisted BENCH_*.json format that
/// lets the perf/robustness trajectory survive repo re-anchors. Rows are
/// appended in deterministic (job) order so serial and parallel sweeps
/// produce byte-identical files.
class JsonRows {
 public:
  void add(const std::string& config, std::uint64_t seed,
           const std::string& metric, double value) {
    // Only the double goes through a bounded snprintf; the row itself is
    // assembled as a std::string so an arbitrarily long config or metric
    // name can never truncate the row and corrupt the JSON file.
    // JSON has no NaN/Inf literal; non-finite metric values (e.g. the NaN
    // mean_error of a run with zero reports) become null.
    char num[32];
    if (std::isfinite(value)) {
      std::snprintf(num, sizeof(num), "%.6g", value);
    } else {
      std::snprintf(num, sizeof(num), "null");
    }
    std::string row = "  {\"config\": \"";
    row += config;
    row += "\", \"seed\": ";
    row += std::to_string(seed);
    row += ", \"metric\": \"";
    row += metric;
    row += "\", \"value\": ";
    row += num;
    row += "}";
    rows_.push_back(std::move(row));
  }

  /// Like add(), but renders the value with full round-trip precision
  /// (%.17g). The chaos fuzzer's serial-vs-parallel differential diffs
  /// these rows byte-for-byte, so a divergence below %.6g must not be
  /// rounded away.
  void add_exact(const std::string& config, std::uint64_t seed,
                 const std::string& metric, double value) {
    char num[40];
    if (std::isfinite(value)) {
      std::snprintf(num, sizeof(num), "%.17g", value);
    } else {
      std::snprintf(num, sizeof(num), "null");
    }
    std::string row = "  {\"config\": \"";
    row += config;
    row += "\", \"seed\": ";
    row += std::to_string(seed);
    row += ", \"metric\": \"";
    row += metric;
    row += "\", \"value\": ";
    row += num;
    row += "}";
    rows_.push_back(std::move(row));
  }

  /// Individual rows, for diff tooling that wants the first divergence
  /// rather than a whole-file compare.
  const std::vector<std::string>& rows() const { return rows_; }

  std::string render() const {
    std::string out = "[\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += rows_[i];
      out += i + 1 < rows_.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
  }

  bool empty() const { return rows_.empty(); }

 private:
  std::vector<std::string> rows_;
};

/// Seeds per measured point; override with ET_BENCH_SEEDS=n (smaller is
/// faster, noisier).
inline int seeds_per_point(int fallback = 3) {
  if (const char* env = std::getenv("ET_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==========================================================\n");
}

}  // namespace et::bench
