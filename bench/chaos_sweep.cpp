/// Chaos sweep — recovery under injected faults.
///
/// The paper's §2 robustness claim ("applications must not depend on the
/// correctness or availability of any particular node") quantified: the
/// tank scenario runs under periodic leader crash+reboot plus a
/// Gilbert–Elliott burst-loss channel, and we measure how the protocol
/// heals.
///
/// Two curves:
///  1. recovery time vs heartbeat period — takeover latency is bounded by
///     the receive timer (2.1 x HB), so mean time-to-takeover should scale
///     roughly linearly with the period;
///  2. tracking quality vs fault rate — more frequent leader crashes widen
///     the integrated tracking gap and eventually break label continuity.
///
/// All points are deterministic for a fixed seed: results are reported in
/// job order, so serial (ET_BENCH_THREADS=1) and parallel sweeps print
/// byte-identical output.

#include <cstdlib>
#include <iterator>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/sweep_runner.hpp"
#include "fault/fault_injector.hpp"
#include "metrics/recovery.hpp"
#include "metrics/trace.hpp"
#include "scenario/tank.hpp"

namespace {

using namespace et;
using namespace et::scenario;

struct ChaosPoint {
  double leader_faults = 0.0;
  double recoveries = 0.0;
  double mean_takeover_s = 0.0;
  double label_preserved = 0.0;  // fraction of recoveries keeping the label
  double tracking_gap_s = 0.0;
  double distinct_labels = 0.0;
  double tracked_fraction = 0.0;
};

TankScenarioParams base_params(std::uint64_t seed) {
  TankScenarioParams params;
  params.rows = 3;
  params.cols = 12;
  params.speed_hops_per_s = 1.0;
  params.group.heartbeat_period = Duration::seconds(0.5);
  // Bursty MICA-style losses instead of i.i.d. noise.
  params.radio.burst_loss.enabled = true;
  params.seed = seed;
  return params;
}

/// One seeded chaos run: tank traverse + periodic leader harassment + GE
/// loss, instrumented with the recovery monitor.
ChaosPoint chaos_run(const TankScenarioParams& params, Duration crash_period,
                     Duration downtime) {
  TankScenario scenario(params);
  fault::FaultInjector injector(scenario.system());
  metrics::RecoveryMonitor recovery(scenario.system(), injector,
                                    Duration::millis(100));
  injector.harass_leaders(scenario.tracker_type(), crash_period, downtime);
  const TankRunResult result = scenario.run();

  ChaosPoint point;
  point.leader_faults =
      static_cast<double>(recovery.stats().leader_faults);
  point.recoveries = static_cast<double>(recovery.stats().recoveries);
  point.mean_takeover_s = recovery.mean_takeover_seconds();
  point.label_preserved = recovery.label_preserved_fraction();
  point.tracking_gap_s = recovery.tracking_gap_seconds();
  point.distinct_labels =
      static_cast<double>(result.tracking.distinct_labels);
  point.tracked_fraction = result.tracking.tracked_fraction();
  return point;
}

ChaosPoint average(const std::vector<ChaosPoint>& points) {
  ChaosPoint mean;
  if (points.empty()) return mean;
  for (const ChaosPoint& p : points) {
    mean.leader_faults += p.leader_faults;
    mean.recoveries += p.recoveries;
    mean.mean_takeover_s += p.mean_takeover_s;
    mean.label_preserved += p.label_preserved;
    mean.tracking_gap_s += p.tracking_gap_s;
    mean.distinct_labels += p.distinct_labels;
    mean.tracked_fraction += p.tracked_fraction;
  }
  const double n = static_cast<double>(points.size());
  mean.leader_faults /= n;
  mean.recoveries /= n;
  mean.mean_takeover_s /= n;
  mean.label_preserved /= n;
  mean.tracking_gap_s /= n;
  mean.distinct_labels /= n;
  mean.tracked_fraction /= n;
  return mean;
}

void print_point(double x, const ChaosPoint& p) {
  std::printf("  %7.3f | %6.1f %6.1f | %11.3f %10.2f | %8.2f %8.2f %9.2f\n",
              x, p.leader_faults, p.recoveries, p.mean_takeover_s,
              p.label_preserved, p.tracking_gap_s, p.distinct_labels,
              p.tracked_fraction);
}

void print_table_header(const char* x_name) {
  std::printf("  %7s | %6s %6s | %11s %10s | %8s %8s %9s\n", x_name, "crash",
              "recov", "takeover(s)", "label-keep", "gap(s)", "labels",
              "tracked");
}

constexpr double kHeartbeatPeriods[] = {0.125, 0.25, 0.5, 1.0};
constexpr double kCrashPeriods[] = {1.5, 3.0, 6.0, 12.0};

}  // namespace

int main() {
  bench::print_header("Chaos sweep: recovery under injected faults",
                      "EnviroTrack §2 robustness claim, chaos-tested");
  const int seeds = bench::seeds_per_point(3);
  std::printf("(tank 3x12 grid, GE burst loss on, leader crash+reboot; "
              "%d seeds per point, %u sweep threads)\n",
              seeds, bench::sweep_threads());

  constexpr std::size_t kHbCount = std::size(kHeartbeatPeriods);
  constexpr std::size_t kRateCount = std::size(kCrashPeriods);
  const std::size_t hb_jobs = kHbCount * static_cast<std::size_t>(seeds);
  const std::size_t rate_jobs = kRateCount * static_cast<std::size_t>(seeds);

  // Sweep 1: recovery time vs heartbeat period (crash period fixed at 3 s,
  // downtime 1 s).
  const std::vector<ChaosPoint> hb_flat = bench::run_sweep<ChaosPoint>(
      hb_jobs, [&](std::size_t job) {
        const double period = kHeartbeatPeriods[job / seeds];
        const std::uint64_t seed = 100 + job % seeds;
        TankScenarioParams params = base_params(seed);
        params.group.heartbeat_period = Duration::seconds(period);
        return chaos_run(params, Duration::seconds(3), Duration::seconds(1));
      });

  std::printf("\n  recovery vs heartbeat period (crash every 3 s, 1 s "
              "downtime)\n");
  print_table_header("HB(s)");
  std::vector<double> takeover_curve, gap_curve_hb;
  for (std::size_t i = 0; i < kHbCount; ++i) {
    const std::vector<ChaosPoint> per_seed(
        hb_flat.begin() + i * seeds, hb_flat.begin() + (i + 1) * seeds);
    const ChaosPoint mean = average(per_seed);
    print_point(kHeartbeatPeriods[i], mean);
    takeover_curve.push_back(mean.mean_takeover_s);
    gap_curve_hb.push_back(mean.tracking_gap_s);
  }

  // Sweep 2: tracking quality vs fault rate (heartbeat fixed at 0.5 s).
  const std::vector<ChaosPoint> rate_flat = bench::run_sweep<ChaosPoint>(
      rate_jobs, [&](std::size_t job) {
        const double crash_period = kCrashPeriods[job / seeds];
        const std::uint64_t seed = 200 + job % seeds;
        TankScenarioParams params = base_params(seed);
        return chaos_run(params, Duration::seconds(crash_period),
                         Duration::seconds(1));
      });

  std::printf("\n  tracking vs fault rate (HB 0.5 s, 1 s downtime)\n");
  print_table_header("crash-T");
  std::vector<double> gap_curve_rate, label_curve;
  for (std::size_t i = 0; i < kRateCount; ++i) {
    const std::vector<ChaosPoint> per_seed(
        rate_flat.begin() + i * seeds, rate_flat.begin() + (i + 1) * seeds);
    const ChaosPoint mean = average(per_seed);
    print_point(kCrashPeriods[i], mean);
    gap_curve_rate.push_back(mean.tracking_gap_s);
    label_curve.push_back(mean.distinct_labels);
  }

  if (const char* dir = std::getenv("ET_BENCH_CSV_DIR")) {
    const std::string path = std::string(dir) + "/chaos_sweep.csv";
    const std::string csv = et::metrics::series_csv(
        "hb_period_s",
        std::vector<double>(std::begin(kHeartbeatPeriods),
                            std::end(kHeartbeatPeriods)),
        {{"mean_takeover_s", takeover_curve},
         {"tracking_gap_s", gap_curve_hb}});
    if (et::metrics::write_file(path, csv)) {
      std::printf("\n  wrote %s\n", path.c_str());
    }
  }

  std::printf(
      "\n  expected shape: mean takeover grows with the heartbeat period\n"
      "  (receive timer = 2.1 x HB bounds detection); faster crash cadence\n"
      "  widens the tracking gap and erodes label continuity.\n");
  return 0;
}
