/// Chaos sweep — recovery under injected faults.
///
/// The paper's §2 robustness claim ("applications must not depend on the
/// correctness or availability of any particular node") quantified: the
/// tank scenario runs under periodic leader crash+reboot plus a
/// Gilbert–Elliott burst-loss channel, and we measure how the protocol
/// heals.
///
/// Four experiments:
///  1. recovery time vs heartbeat period — takeover latency is bounded by
///     the receive timer (2.1 x HB), so mean time-to-takeover should scale
///     roughly linearly with the period;
///  2. tracking quality vs fault rate — more frequent leader crashes widen
///     the integrated tracking gap and eventually break label continuity;
///  3. partition/heal chaos with the runtime invariant oracle attached —
///     square-wave partitions across the tracked traverse must produce
///     ZERO protocol-invariant violations (the bench exits non-zero and
///     prints the oracle trace otherwise);
///  4. acked transport vs fire-and-forget under ~20% Gilbert–Elliott burst
///     loss — the reliability layer must demonstrably raise the end-to-end
///     invoke delivery fraction (enforced, non-zero exit otherwise).
///
/// All points are deterministic for a fixed seed: results are reported in
/// job order, so serial (ET_BENCH_THREADS=1) and parallel sweeps print
/// byte-identical output. Set ET_BENCH_JSON_DIR to persist every per-seed
/// measurement as {config, seed, metric, value} rows in BENCH_chaos.json.

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/sweep_runner.hpp"
#include "core/transport.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/invariants.hpp"
#include "metrics/recovery.hpp"
#include "metrics/trace.hpp"
#include "scenario/tank.hpp"

namespace {

using namespace et;
using namespace et::scenario;

struct ChaosPoint {
  double leader_faults = 0.0;
  double recoveries = 0.0;
  double mean_takeover_s = 0.0;
  double label_preserved = 0.0;  // fraction of recoveries keeping the label
  double tracking_gap_s = 0.0;
  double distinct_labels = 0.0;
  double tracked_fraction = 0.0;
};

TankScenarioParams base_params(std::uint64_t seed) {
  TankScenarioParams params;
  params.rows = 3;
  params.cols = 12;
  params.speed_hops_per_s = 1.0;
  params.group.heartbeat_period = Duration::seconds(0.5);
  // Bursty MICA-style losses instead of i.i.d. noise.
  params.radio.burst_loss.enabled = true;
  params.kernel = bench::kernel_from_env();
  params.seed = seed;
  return params;
}

/// One seeded chaos run: tank traverse + periodic leader harassment + GE
/// loss, instrumented with the recovery monitor.
ChaosPoint chaos_run(const TankScenarioParams& params, Duration crash_period,
                     Duration downtime) {
  TankScenario scenario(params);
  fault::FaultInjector injector(scenario.system());
  metrics::RecoveryMonitor recovery(scenario.system(), injector,
                                    Duration::millis(100));
  injector.harass_leaders(scenario.tracker_type(), crash_period, downtime);
  const TankRunResult result = scenario.run();

  ChaosPoint point;
  point.leader_faults =
      static_cast<double>(recovery.stats().leader_faults);
  point.recoveries = static_cast<double>(recovery.stats().recoveries);
  point.mean_takeover_s = recovery.mean_takeover_seconds();
  point.label_preserved = recovery.label_preserved_fraction();
  point.tracking_gap_s = recovery.tracking_gap_seconds();
  point.distinct_labels =
      static_cast<double>(result.tracking.distinct_labels);
  point.tracked_fraction = result.tracking.tracked_fraction();
  return point;
}

ChaosPoint average(const std::vector<ChaosPoint>& points) {
  ChaosPoint mean;
  if (points.empty()) return mean;
  for (const ChaosPoint& p : points) {
    mean.leader_faults += p.leader_faults;
    mean.recoveries += p.recoveries;
    mean.mean_takeover_s += p.mean_takeover_s;
    mean.label_preserved += p.label_preserved;
    mean.tracking_gap_s += p.tracking_gap_s;
    mean.distinct_labels += p.distinct_labels;
    mean.tracked_fraction += p.tracked_fraction;
  }
  const double n = static_cast<double>(points.size());
  mean.leader_faults /= n;
  mean.recoveries /= n;
  mean.mean_takeover_s /= n;
  mean.label_preserved /= n;
  mean.tracking_gap_s /= n;
  mean.distinct_labels /= n;
  mean.tracked_fraction /= n;
  return mean;
}

// --- Sweep 3: partition/heal chaos under the invariant oracle ------------

struct PartitionPoint {
  double violations = 0.0;
  double checks = 0.0;
  double tracked_fraction = 0.0;
  double takeovers = 0.0;
  double fenced = 0.0;
  std::string oracle_report;  // non-empty only when an invariant broke
  /// Names of the violated invariants ("dual-leader", ...), for the
  /// greppable CHAOS_ORACLE_VIOLATION lines CI surfaces in step summaries.
  std::vector<std::string> violated_kinds;
};

/// One seeded run: tank traverse + square-wave partition splitting the
/// field in half, directory-backed epoch fencing on, the oracle watching
/// every group/transport event.
PartitionPoint partition_run(std::uint64_t seed, Duration downtime) {
  TankScenarioParams params = base_params(seed);
  params.enable_directory = true;  // fence path needs the rendezvous
  params.directory.update_period = Duration::seconds(1);
  TankScenario scenario(params);
  metrics::InvariantOracle oracle(scenario.system());

  fault::PartitionSpec spec;
  std::vector<NodeId> left;
  const Rect bounds = scenario.system().field().bounds();
  const double boundary = bounds.min.x + bounds.width() / 2.0;
  for (std::size_t i = 0; i < scenario.system().node_count(); ++i) {
    const NodeId id{i};
    if (scenario.system().network().mote(id).position().x < boundary) {
      left.push_back(id);
    }
  }
  spec.components.push_back(std::move(left));

  fault::FaultInjector injector(scenario.system());
  fault::FaultPlan plan;
  plan.burst_partition(Time::seconds(2), spec, downtime,
                       Duration::seconds(1.5), 3);
  injector.schedule(plan);
  const TankRunResult result = scenario.run();

  PartitionPoint point;
  point.violations = static_cast<double>(oracle.violations().size());
  point.checks = static_cast<double>(oracle.checks_run());
  point.tracked_fraction = result.tracking.tracked_fraction();
  point.takeovers = static_cast<double>(result.groups.takeovers);
  for (std::size_t i = 0; i < scenario.system().node_count(); ++i) {
    point.fenced += static_cast<double>(
        scenario.system().stack(NodeId{i}).groups().stats().fenced);
  }
  if (!oracle.ok()) {
    point.oracle_report = oracle.report();
    for (const metrics::InvariantViolation& violation : oracle.violations()) {
      point.violated_kinds.emplace_back(
          metrics::invariant_kind_name(violation.kind));
    }
  }
  return point;
}

// --- Sweep 4: acked transport vs fire-and-forget under burst loss --------

struct DeliveryPoint {
  double attempted = 0.0;
  double delivered = 0.0;
  double delivered_fraction = 0.0;
  double retransmits = 0.0;
  double delivery_failures = 0.0;
};

/// Gilbert–Elliott channel at ~20% effective loss: pi_bad = 0.5/(2+0.5),
/// effective = 0.8*0.2 + 0.05*0.8.
radio::BurstLossConfig twenty_pct_loss() {
  radio::BurstLossConfig ge;
  ge.enabled = true;
  ge.mean_good = Duration::seconds(2);
  ge.mean_bad = Duration::millis(500);
  ge.loss_good = 0.05;
  ge.loss_bad = 0.8;
  return ge;
}

/// One seeded run: a stationary "blob" entity on one side of a 5x12 grid
/// invokes a port on a "station" context two hops away, every 250 ms for
/// 40 s, through the burst-loss channel. Delivered fraction = method
/// dispatches at the station / invokes issued at the blob leader. The
/// only difference between the two configs is TransportConfig::reliable.
DeliveryPoint delivery_run(std::uint64_t seed, bool reliable) {
  sim::Simulator sim(seed);
  env::Environment env(sim.make_rng("env"));
  const env::Field field = env::Field::grid(5, 12);

  core::SystemConfig config;
  config.radio.comm_radius = 6.0;
  config.radio.burst_loss = twenty_pct_loss();
  // Keep the channel a pure ~20% GE process: with comm radius 6 the whole
  // 5x12 grid is one collision domain, and the default collision model
  // would dominate the loss figure we are sweeping.
  config.radio.model_collisions = false;
  config.radio.carrier_sense_miss = 0.0;
  // Directory + transport traffic overflows the 12-slot default CPU queue;
  // silent task drops would masquerade as channel loss.
  config.cpu.queue_capacity = 64;
  config.middleware.enable_directory = true;
  config.middleware.enable_transport = true;
  config.middleware.transport.reliable = reliable;
  config.middleware.group.suppression_radius = 2.4;
  config.middleware.group.wait_radius = 2.7;
  core::EnviroTrackSystem system(sim, env, field, config);
  system.senses().add("blob_sensor", core::sense_target("blob"));
  system.senses().add("station_sensor", core::sense_target("station"));

  core::ContextTypeSpec blob_spec;
  blob_spec.name = "blob";
  blob_spec.activation = "blob_sensor";
  blob_spec.variables.push_back(core::AggregateVarSpec{
      "where", "avg", "position", Duration::seconds(1), 2});
  const core::TypeIndex blob_type =
      system.add_context_type(std::move(blob_spec));

  // Distinct invocations delivered (by step argument). Delivery across a
  // leader migration is at-least-once — the same invocation can dispatch
  // at the old and the new leader — so a raw dispatch count would exceed
  // the attempts and overstate the delivery fraction.
  std::vector<bool> seen(160, false);
  core::ContextTypeSpec station_spec;
  station_spec.name = "station";
  station_spec.activation = "station_sensor";
  station_spec.variables.push_back(core::AggregateVarSpec{
      "level", "avg", "magnetic", Duration::seconds(2), 1});
  core::ObjectSpec sink;
  sink.name = "sink";
  core::MethodSpec ping;
  ping.name = "ping";
  ping.invocation.kind = core::InvocationSpec::Kind::kCondition;
  ping.invocation.condition = [](core::TrackingContext&) { return false; };
  ping.body = [&seen](core::TrackingContext& ctx) {
    const auto& args = ctx.incoming_args();
    if (!args.empty()) {
      const auto step = static_cast<std::size_t>(args[0]);
      if (step < seen.size()) seen[step] = true;
    }
  };
  sink.methods.push_back(std::move(ping));
  station_spec.objects.push_back(std::move(sink));
  const core::TypeIndex station_type =
      system.add_context_type(std::move(station_spec));
  system.start();

  env::Target blob;
  blob.type = "blob";
  blob.trajectory =
      std::make_unique<env::StationaryTrajectory>(Vec2{2.0, 2.0});
  blob.radius = env::RadiusProfile::constant(1.2);
  blob.emissions["magnetic"] = 10.0;
  env.add_target(std::move(blob));

  env::Target station;
  station.type = "station";
  station.trajectory =
      std::make_unique<env::StationaryTrajectory>(Vec2{9.0, 2.0});
  station.radius = env::RadiusProfile::constant(1.2);
  station.emissions["magnetic"] = 5.0;
  env.add_target(std::move(station));

  sim.run_for(Duration::seconds(6));  // group + directory warm-up

  // Lowest-id current leader of a type. Under burst loss a group briefly
  // shows two leaders mid-handoff; demanding a *sole* leader would skip
  // most steps and measure leader churn instead of transport delivery.
  const auto first_leader =
      [&system](core::TypeIndex type) -> std::optional<NodeId> {
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      const NodeId id{i};
      if (system.stack(id).groups().role(type) == core::Role::kLeader) {
        return id;
      }
    }
    return std::nullopt;
  };

  int attempted = 0;
  LabelId station_label;  // last-seen label survives leaderless gaps
  for (int step = 0; step < 160; ++step) {  // 40 s of periodic invokes
    if (const auto sink_leader = first_leader(station_type)) {
      const LabelId fresh =
          system.stack(*sink_leader).groups().current_label(station_type);
      if (fresh.is_valid()) station_label = fresh;
    }
    const auto origin = first_leader(blob_type);
    if (origin && station_label.is_valid()) {
      system.stack(*origin).transport()->invoke(
          station_type, station_label, PortId{0},
          {static_cast<double>(step)});
      ++attempted;
    }
    sim.run_for(Duration::millis(250));
  }
  // Drain in-flight retransmits: the full backoff ladder on a 1.2 s base
  // runs past 20 s worst case.
  sim.run_for(Duration::seconds(15));

  DeliveryPoint point;
  point.attempted = static_cast<double>(attempted);
  int delivered = 0;
  for (const bool hit : seen) delivered += hit ? 1 : 0;
  point.delivered = static_cast<double>(delivered);
  point.delivered_fraction =
      attempted > 0 ? static_cast<double>(delivered) / attempted : 0.0;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    const auto& ts = system.stack(NodeId{i}).transport()->stats();
    point.retransmits += static_cast<double>(ts.retransmits);
    point.delivery_failures += static_cast<double>(ts.delivery_failures);
  }
  return point;
}

void print_point(double x, const ChaosPoint& p) {
  std::printf("  %7.3f | %6.1f %6.1f | %11.3f %10.2f | %8.2f %8.2f %9.2f\n",
              x, p.leader_faults, p.recoveries, p.mean_takeover_s,
              p.label_preserved, p.tracking_gap_s, p.distinct_labels,
              p.tracked_fraction);
}

void print_table_header(const char* x_name) {
  std::printf("  %7s | %6s %6s | %11s %10s | %8s %8s %9s\n", x_name, "crash",
              "recov", "takeover(s)", "label-keep", "gap(s)", "labels",
              "tracked");
}

constexpr double kHeartbeatPeriods[] = {0.125, 0.25, 0.5, 1.0};
constexpr double kCrashPeriods[] = {1.5, 3.0, 6.0, 12.0};
constexpr double kPartitionDowntimes[] = {0.5, 1.0, 2.0, 4.0};

}  // namespace

int main() {
  bench::print_header("Chaos sweep: recovery under injected faults",
                      "EnviroTrack §2 robustness claim, chaos-tested");
  const int seeds = bench::seeds_per_point(3);
  std::printf("(tank 3x12 grid, GE burst loss on, leader crash+reboot; "
              "%d seeds per point, %u sweep threads)\n",
              seeds, bench::sweep_threads());

  constexpr std::size_t kHbCount = std::size(kHeartbeatPeriods);
  constexpr std::size_t kRateCount = std::size(kCrashPeriods);
  const std::size_t hb_jobs = kHbCount * static_cast<std::size_t>(seeds);
  const std::size_t rate_jobs = kRateCount * static_cast<std::size_t>(seeds);

  // Sweep 1: recovery time vs heartbeat period (crash period fixed at 3 s,
  // downtime 1 s).
  const std::vector<ChaosPoint> hb_flat = bench::run_sweep<ChaosPoint>(
      hb_jobs, [&](std::size_t job) {
        const double period = kHeartbeatPeriods[job / seeds];
        const std::uint64_t seed = 100 + job % seeds;
        TankScenarioParams params = base_params(seed);
        params.group.heartbeat_period = Duration::seconds(period);
        return chaos_run(params, Duration::seconds(3), Duration::seconds(1));
      });

  std::printf("\n  recovery vs heartbeat period (crash every 3 s, 1 s "
              "downtime)\n");
  print_table_header("HB(s)");
  std::vector<double> takeover_curve, gap_curve_hb;
  for (std::size_t i = 0; i < kHbCount; ++i) {
    const std::vector<ChaosPoint> per_seed(
        hb_flat.begin() + i * seeds, hb_flat.begin() + (i + 1) * seeds);
    const ChaosPoint mean = average(per_seed);
    print_point(kHeartbeatPeriods[i], mean);
    takeover_curve.push_back(mean.mean_takeover_s);
    gap_curve_hb.push_back(mean.tracking_gap_s);
  }

  // Sweep 2: tracking quality vs fault rate (heartbeat fixed at 0.5 s).
  const std::vector<ChaosPoint> rate_flat = bench::run_sweep<ChaosPoint>(
      rate_jobs, [&](std::size_t job) {
        const double crash_period = kCrashPeriods[job / seeds];
        const std::uint64_t seed = 200 + job % seeds;
        TankScenarioParams params = base_params(seed);
        return chaos_run(params, Duration::seconds(crash_period),
                         Duration::seconds(1));
      });

  std::printf("\n  tracking vs fault rate (HB 0.5 s, 1 s downtime)\n");
  print_table_header("crash-T");
  std::vector<double> gap_curve_rate, label_curve;
  for (std::size_t i = 0; i < kRateCount; ++i) {
    const std::vector<ChaosPoint> per_seed(
        rate_flat.begin() + i * seeds, rate_flat.begin() + (i + 1) * seeds);
    const ChaosPoint mean = average(per_seed);
    print_point(kCrashPeriods[i], mean);
    gap_curve_rate.push_back(mean.tracking_gap_s);
    label_curve.push_back(mean.distinct_labels);
  }

  // Sweep 3: partition/heal chaos under the invariant oracle. Any
  // violation is a protocol bug, not a noisy data point: dump the oracle's
  // event trace and fail the bench.
  constexpr std::size_t kDownCount = std::size(kPartitionDowntimes);
  const std::size_t part_jobs = kDownCount * static_cast<std::size_t>(seeds);
  const std::vector<PartitionPoint> part_flat =
      bench::run_sweep<PartitionPoint>(part_jobs, [&](std::size_t job) {
        const double down = kPartitionDowntimes[job / seeds];
        const std::uint64_t seed = 300 + job % seeds;
        return partition_run(seed, Duration::seconds(down));
      });

  std::printf("\n  partition/heal chaos, invariant oracle attached "
              "(3 cycles, 1.5 s heal, fencing on)\n");
  std::printf("  %7s | %9s %8s | %8s %9s %7s\n", "down(s)", "violation",
              "checks", "takeover", "tracked", "fenced");
  bool invariants_hold = true;
  for (std::size_t i = 0; i < kDownCount; ++i) {
    PartitionPoint mean;
    for (std::size_t s = 0; s < static_cast<std::size_t>(seeds); ++s) {
      const PartitionPoint& p = part_flat[i * seeds + s];
      mean.violations += p.violations;
      mean.checks += p.checks;
      mean.takeovers += p.takeovers;
      mean.tracked_fraction += p.tracked_fraction;
      mean.fenced += p.fenced;
      if (!p.oracle_report.empty()) {
        invariants_hold = false;
        std::fprintf(stderr,
                     "\nINVARIANT VIOLATION (down=%.1fs seed=%llu):\n%s\n",
                     kPartitionDowntimes[i],
                     static_cast<unsigned long long>(300 + s),
                     p.oracle_report.c_str());
        // One machine-greppable line per violation: CI greps these into
        // the step summary so the violated invariant is named without
        // scraping the human-oriented trace above.
        for (const std::string& kind : p.violated_kinds) {
          std::fprintf(stderr,
                       "CHAOS_ORACLE_VIOLATION invariant=%s down=%.1f "
                       "seed=%llu\n",
                       kind.c_str(), kPartitionDowntimes[i],
                       static_cast<unsigned long long>(300 + s));
        }
      }
    }
    const double n = static_cast<double>(seeds);
    std::printf("  %7.1f | %9.1f %8.1f | %8.1f %9.2f %7.1f\n",
                kPartitionDowntimes[i], mean.violations / n, mean.checks / n,
                mean.takeovers / n, mean.tracked_fraction / n,
                mean.fenced / n);
  }

  // Sweep 4: end-to-end invoke delivery under ~20% burst loss, acked
  // transport vs the fire-and-forget ablation. Same world, same seeds —
  // the only difference is TransportConfig::reliable.
  const char* kTransportNames[] = {"fire-and-forget", "reliable"};
  const std::size_t del_jobs = 2 * static_cast<std::size_t>(seeds);
  const std::vector<DeliveryPoint> del_flat =
      bench::run_sweep<DeliveryPoint>(del_jobs, [&](std::size_t job) {
        const bool reliable = job / seeds == 1;
        const std::uint64_t seed = 400 + job % seeds;
        return delivery_run(seed, reliable);
      });

  std::printf("\n  invoke delivery under ~20%% GE burst loss "
              "(blob -> station, 2 hops, 160 invokes)\n");
  std::printf("  %16s | %8s %9s %9s | %7s %7s\n", "transport", "attempt",
              "delivered", "fraction", "retx", "fail");
  double mean_fraction[2] = {0.0, 0.0};
  for (std::size_t c = 0; c < 2; ++c) {
    DeliveryPoint mean;
    for (std::size_t s = 0; s < static_cast<std::size_t>(seeds); ++s) {
      const DeliveryPoint& p = del_flat[c * seeds + s];
      mean.attempted += p.attempted;
      mean.delivered += p.delivered;
      mean.delivered_fraction += p.delivered_fraction;
      mean.retransmits += p.retransmits;
      mean.delivery_failures += p.delivery_failures;
    }
    const double n = static_cast<double>(seeds);
    mean_fraction[c] = mean.delivered_fraction / n;
    std::printf("  %16s | %8.1f %9.1f %9.3f | %7.1f %7.1f\n",
                kTransportNames[c], mean.attempted / n, mean.delivered / n,
                mean_fraction[c], mean.retransmits / n,
                mean.delivery_failures / n);
  }

  if (const char* dir = std::getenv("ET_BENCH_CSV_DIR")) {
    const std::string path = std::string(dir) + "/chaos_sweep.csv";
    const std::string csv = et::metrics::series_csv(
        "hb_period_s",
        std::vector<double>(std::begin(kHeartbeatPeriods),
                            std::end(kHeartbeatPeriods)),
        {{"mean_takeover_s", takeover_curve},
         {"tracking_gap_s", gap_curve_hb}});
    if (et::metrics::write_file(path, csv)) {
      std::printf("\n  wrote %s\n", path.c_str());
    }
  }

  // Machine-readable per-seed rows; committed as BENCH_chaos.json so the
  // robustness trajectory survives repo re-anchors.
  if (const char* dir = std::getenv("ET_BENCH_JSON_DIR")) {
    bench::JsonRows rows;
    char config[64];
    for (std::size_t i = 0; i < kHbCount; ++i) {
      for (std::size_t s = 0; s < static_cast<std::size_t>(seeds); ++s) {
        std::snprintf(config, sizeof(config), "hb=%g", kHeartbeatPeriods[i]);
        const ChaosPoint& p = hb_flat[i * seeds + s];
        rows.add(config, 100 + s, "mean_takeover_s", p.mean_takeover_s);
        rows.add(config, 100 + s, "tracking_gap_s", p.tracking_gap_s);
      }
    }
    for (std::size_t i = 0; i < kRateCount; ++i) {
      for (std::size_t s = 0; s < static_cast<std::size_t>(seeds); ++s) {
        std::snprintf(config, sizeof(config), "crash_period=%g",
                      kCrashPeriods[i]);
        const ChaosPoint& p = rate_flat[i * seeds + s];
        rows.add(config, 200 + s, "tracking_gap_s", p.tracking_gap_s);
        rows.add(config, 200 + s, "tracked_fraction", p.tracked_fraction);
      }
    }
    for (std::size_t i = 0; i < kDownCount; ++i) {
      for (std::size_t s = 0; s < static_cast<std::size_t>(seeds); ++s) {
        std::snprintf(config, sizeof(config), "partition_down=%g",
                      kPartitionDowntimes[i]);
        const PartitionPoint& p = part_flat[i * seeds + s];
        rows.add(config, 300 + s, "oracle_violations", p.violations);
        rows.add(config, 300 + s, "oracle_checks", p.checks);
        rows.add(config, 300 + s, "tracked_fraction", p.tracked_fraction);
      }
    }
    for (std::size_t c = 0; c < 2; ++c) {
      for (std::size_t s = 0; s < static_cast<std::size_t>(seeds); ++s) {
        std::snprintf(config, sizeof(config), "transport=%s",
                      c == 1 ? "reliable" : "fire_and_forget");
        const DeliveryPoint& p = del_flat[c * seeds + s];
        rows.add(config, 400 + s, "delivered_fraction",
                 p.delivered_fraction);
        rows.add(config, 400 + s, "retransmits", p.retransmits);
        rows.add(config, 400 + s, "delivery_failures", p.delivery_failures);
      }
    }
    const std::string path = std::string(dir) + "/BENCH_chaos.json";
    if (et::metrics::write_file(path, rows.render())) {
      std::printf("\n  wrote %s\n", path.c_str());
    }
  }

  std::printf(
      "\n  expected shape: mean takeover grows with the heartbeat period\n"
      "  (receive timer = 2.1 x HB bounds detection); faster crash cadence\n"
      "  widens the tracking gap and erodes label continuity.\n");

  // Acceptance gates (robustness PR): the oracle must stay clean through
  // every partition/heal cycle, and the acked transport must beat the
  // fire-and-forget ablation under burst loss.
  if (!invariants_hold) {
    std::fprintf(stderr, "\nFAIL: protocol invariants violated under "
                         "partition chaos (see traces above)\n");
    return 1;
  }
  if (mean_fraction[1] <= mean_fraction[0]) {
    std::fprintf(stderr,
                 "\nFAIL: reliable transport (%.3f) does not improve on "
                 "fire-and-forget (%.3f) under 20%% burst loss\n",
                 mean_fraction[1], mean_fraction[0]);
    return 1;
  }
  std::printf("\n  invariant oracle: clean across all partition chaos runs; "
              "acked delivery %.3f vs fire-and-forget %.3f\n",
              mean_fraction[1], mean_fraction[0]);
  return 0;
}
