/// Figure 3 — "Tracked Tank Trajectory".
///
/// The paper's representative run: motes at integer (x, y) coordinates, the
/// real target trajectory the horizontal line y = 0.5, speed 10 s/hop
/// (≈ 50 km/hr), aggregate location = avg(position) with confidence 2 and
/// freshness 1 s. The bench prints the real and reported trajectory points
/// the pursuer logged, plus the tracking-error summary. Expected shape:
/// reported points hug the y = 0.5 line within about one grid unit, with
/// occasional loss-induced direction anomalies.

#include <cstdlib>

#include "bench/bench_util.hpp"
#include "metrics/trace.hpp"
#include "scenario/tank.hpp"

int main() {
  using namespace et;
  using namespace et::scenario;

  bench::print_header("Figure 3: tracked tank trajectory",
                      "ICDCS'04 EnviroTrack, Fig. 3 (§6.1)");

  TankScenarioParams params;
  params.rows = 3;
  params.cols = 11;  // motes at x = 0..10, like the figure
  params.speed_hops_per_s = 0.1;  // 10 seconds per hop
  params.track_y = 0.5;
  params.report_period = Duration::seconds(5);
  params.seed = 42;

  const TankRunResult result = run_tank_scenario(params);

  std::printf("\n  t(s)    real (x, y)      reported (x, y)   error\n");
  std::printf("  ------  ---------------  ----------------  -----\n");
  for (const auto& point : result.track) {
    std::printf("  %6.1f  (%5.2f, %5.2f)   (%5.2f, %5.2f)    %.2f\n",
                point.time.to_seconds(), point.actual.x, point.actual.y,
                point.reported.x, point.reported.y, point.error);
  }

  std::printf("\n  reports: %zu   distinct labels at pursuer: %zu\n",
              result.track.size(), result.track_labels);
  std::printf("  mean tracking error: %.2f grid units (%.0f m full scale)\n",
              [&] {
                double sum = 0;
                for (const auto& p : result.track) sum += p.error;
                return result.track.empty() ? 0.0
                                            : sum / result.track.size();
              }(),
              [&] {
                double sum = 0;
                for (const auto& p : result.track) sum += p.error;
                return result.track.empty()
                           ? 0.0
                           : sum / result.track.size() * kMetersPerHop;
              }());
  std::printf("  coherent: %s (distinct labels tracking target: %llu)\n",
              result.tracking.coherent() ? "yes" : "NO",
              static_cast<unsigned long long>(
                  result.tracking.distinct_labels));

  // Optional plot artifact: ET_BENCH_CSV_DIR=/tmp writes fig3_track.csv.
  if (const char* dir = std::getenv("ET_BENCH_CSV_DIR")) {
    const std::string path = std::string(dir) + "/fig3_track.csv";
    if (et::metrics::write_file(path,
                                et::metrics::track_csv(result.track))) {
      std::printf("  wrote %s\n", path.c_str());
    }
  }
  return 0;
}
