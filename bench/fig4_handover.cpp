/// Figure 4 — "Successful handovers".
///
/// Percentage of successful context-label handovers for two target speeds
/// (33 and 50 km/hr) under two group-management settings:
///   (1) leader heartbeats are NOT propagated past the sensing radius
///       (heartbeat transmit range = sensing radius), and
///   (2) heartbeats are propagated one hop past the sensing radius.
/// Paper shape: setting (2) achieves 100% at both speeds; setting (1)
/// degrades, the more so the faster the target — nodes that newly sense the
/// target never heard of the existing label and spawn a spurious one.

#include <cstdlib>
#include <vector>

#include "bench/bench_util.hpp"
#include "metrics/trace.hpp"
#include "scenario/tank.hpp"

namespace {

using namespace et;
using namespace et::scenario;

struct Cell {
  double success_pct;
  std::uint64_t ok;
  std::uint64_t fail;
};

Cell measure(double kmh, bool propagate_past_sensing, int seeds) {
  std::uint64_t ok = 0;
  std::uint64_t fail = 0;
  for (int i = 0; i < seeds; ++i) {
    TankScenarioParams params;
    params.rows = 3;
    params.cols = 14;
    params.sensing_radius = 1.0;
    params.speed_hops_per_s = kmh_to_hops_per_s(kmh);
    // The §6.1 experiments predate the relinquish optimisation (§6.2
    // introduces it later): handover happens via receive-timer takeover.
    // The heartbeat period is calibrated to the testbed's sluggish
    // group-management cadence — the simulated stack reacts faster than
    // the 2004 motes did, so the same failure regime appears at a longer
    // period.
    params.group.relinquish_enabled = false;
    params.group.heartbeat_period = Duration::seconds(3);
    // Setting 1: heartbeats heard only within the sensing radius.
    // Setting 2: one hop past it.
    params.group.heartbeat_range =
        propagate_past_sensing ? params.sensing_radius + 1.0
                               : params.sensing_radius;
    params.base_station.reset();  // pure group-management experiment
    params.seed = 2000 + i * 13;
    const TankRunResult result = run_tank_scenario(params);
    ok += result.tracking.successful_handovers;
    fail += result.tracking.failed_handovers;
  }
  const std::uint64_t total = ok + fail;
  return Cell{total == 0 ? 100.0 : 100.0 * ok / total, ok, fail};
}

}  // namespace

int main() {
  bench::print_header("Figure 4: successful context-label handovers",
                      "ICDCS'04 EnviroTrack, Fig. 4 (§6.1)");
  const int seeds = bench::seeds_per_point(12);
  std::printf("(%d runs per cell)\n", seeds);

  std::printf("\n  %-42s  %8s  %8s\n", "setting", "33 km/hr", "50 km/hr");
  std::printf("  %-42s  %8s  %8s\n",
              "------------------------------------------", "--------",
              "--------");

  std::vector<double> with_propagation;
  std::vector<double> without_propagation;
  for (bool propagate : {true, false}) {
    const Cell slow = measure(kTankSlowKmh, propagate, seeds);
    const Cell fast = measure(kTankFastKmh, propagate, seeds);
    auto& curve = propagate ? with_propagation : without_propagation;
    curve = {slow.success_pct, fast.success_pct};
    std::printf("  %-42s  %7.1f%%  %7.1f%%\n",
                propagate ? "propagate heartbeat past sensing radius"
                          : "heartbeats only within sensing radius",
                slow.success_pct, fast.success_pct);
    std::printf("    (ok/fail: %llu/%llu and %llu/%llu)\n",
                static_cast<unsigned long long>(slow.ok),
                static_cast<unsigned long long>(slow.fail),
                static_cast<unsigned long long>(fast.ok),
                static_cast<unsigned long long>(fast.fail));
  }

  if (const char* dir = std::getenv("ET_BENCH_CSV_DIR")) {
    const std::string path = std::string(dir) + "/fig4_handover.csv";
    const std::string csv = et::metrics::series_csv(
        "speed_kmh", {kTankSlowKmh, kTankFastKmh},
        {{"propagate_pct", with_propagation},
         {"confined_pct", without_propagation}});
    if (et::metrics::write_file(path, csv)) {
      std::printf("\n  wrote %s\n", path.c_str());
    }
  }

  std::printf(
      "\n  paper: 100%% / 100%% with propagation; degraded without, worse at "
      "50 km/hr\n");
  return 0;
}
