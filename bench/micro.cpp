/// Micro-benchmarks of the library's hot paths (google-benchmark).
///
/// Not a paper figure; these guard the substrate's performance: event-queue
/// throughput, aggregation reads, the language pipeline, geographic
/// routing, and a full simulated second of the tank scenario.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/aggregate_state.hpp"
#include "metrics/trace.hpp"
#include "etl/compiler.hpp"
#include "etl/parser.hpp"
#include "scenario/tank.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace et;

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(Duration::micros(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run_all());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // The cancellation-dominated regime: group-management timers are
  // rescheduled (cancel + schedule) far more often than they fire.
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      handles.push_back(sim.schedule(Duration::micros(i + 1), [] {}));
    }
    for (int i = 0; i < 1000; i += 2) handles[i].cancel();
    benchmark::DoNotOptimize(sim.run_all());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_PeriodicEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    sim.schedule_periodic(Duration::millis(1), Duration::millis(1),
                          [&] { ++counter; });
    sim.run_until(Time::seconds(1));
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PeriodicEvents);

void BM_AggregateRead(benchmark::State& state) {
  core::ContextTypeSpec spec;
  spec.name = "bench";
  spec.activation = "x";
  spec.variables.push_back(core::AggregateVarSpec{
      "location", "avg", "position", Duration::seconds(1), 2});
  const auto registry = core::AggregationRegistry::with_builtins();
  core::AggregateStateTable table(spec, registry);
  const std::size_t reporters = state.range(0);
  for (std::size_t i = 0; i < reporters; ++i) {
    table.add_report(NodeId{i}, {static_cast<double>(i), 0.0},
                     Time::seconds(0.5), {0.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.read(0u, Time::seconds(1)));
  }
}
BENCHMARK(BM_AggregateRead)->Arg(4)->Arg(16)->Arg(64);

void BM_EtlParse(benchmark::State& state) {
  constexpr const char* kSource = R"(
    begin context tracker
      activation: magnetic_sensor_reading();
      location : avg(position) confidence=2, freshness=1s;
      begin object reporter
        invocation: TIMER(5s)
        report() { send(pursuer, self.label, location); }
      end
    end context
  )";
  for (auto _ : state) {
    auto program = etl::parse(kSource);
    benchmark::DoNotOptimize(program.ok());
  }
}
BENCHMARK(BM_EtlParse);

void BM_MediumBroadcast(benchmark::State& state) {
  sim::Simulator sim;
  radio::RadioConfig config;
  config.loss_probability = 0.0;
  radio::Medium medium(sim, config);
  const std::size_t n = state.range(0);
  for (std::size_t i = 0; i < n; ++i) {
    medium.attach(NodeId{i}, {static_cast<double>(i % 10),
                              static_cast<double>(i / 10)},
                  [](const radio::Frame&) {});
  }
  class Junk final : public radio::Payload {
   public:
    std::size_t size_bytes() const override { return 16; }
  };
  auto payload = std::make_shared<Junk>();
  for (auto _ : state) {
    medium.send(radio::Frame{NodeId{0}, std::nullopt, radio::MsgType::kUser,
                             payload});
    sim.run_for(Duration::millis(50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MediumBroadcast)->Arg(25)->Arg(100);

/// Dense-field broadcast: N motes on a sqrt(N) x sqrt(N) unit grid with the
/// paper's comm radius 6, one node broadcasting from the centre. With the
/// spatial index the per-broadcast cost depends on the ~121 nodes in range,
/// not on N; the brute-force variant (suffix /0) scans all N endpoints.
void BM_DenseBroadcast(benchmark::State& state) {
  const std::size_t n = state.range(0);
  const bool use_index = state.range(1) != 0;
  sim::Simulator sim;
  radio::RadioConfig config;
  config.loss_probability = 0.0;
  config.use_spatial_index = use_index;
  radio::Medium medium(sim, config);
  const std::size_t side = static_cast<std::size_t>(std::sqrt(n)) + 1;
  for (std::size_t i = 0; i < n; ++i) {
    medium.attach(NodeId{i}, {static_cast<double>(i % side),
                              static_cast<double>(i / side)},
                  [](const radio::Frame&) {});
  }
  class Junk final : public radio::Payload {
   public:
    std::size_t size_bytes() const override { return 16; }
  };
  auto payload = std::make_shared<Junk>();
  const NodeId center{n / 2};
  for (auto _ : state) {
    medium.send(radio::Frame{center, std::nullopt, radio::MsgType::kUser,
                             payload});
    sim.run_for(Duration::millis(50));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DenseBroadcast)
    ->ArgsProduct({{100, 1000, 5000}, {0, 1}})
    ->ArgNames({"n", "index"});

/// Large-world scaling: N motes (squarest rows x cols factorisation), the
/// tank crossing the middle band, two simulated seconds per measurement.
/// threads:0 is the serial canonical oracle; threads:k runs the tiled
/// parallel kernel. Reported as sim-seconds per wall-second; the reporter
/// derives speedup_vs_serial rows from the threads:0 baseline.
void BM_ScalingTank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool wide = state.range(2) != 0;
  constexpr double kSimSeconds = 2.0;
  std::size_t rows = 1, cols = n;
  for (auto r = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
       r >= 1; --r) {
    if (n % r == 0) {
      rows = r;
      cols = n / r;
      break;
    }
  }
  for (auto _ : state) {
    state.PauseTiming();
    scenario::TankScenarioParams params;
    params.rows = rows;
    params.cols = cols;
    params.track_y = rows / 2.0;
    params.speed_hops_per_s = 5.0;
    // The ground-truth monitor scans all N stacks per sample (serial);
    // sample sparsely so the kernel, not the instrumentation, is measured.
    params.coherence_sample_period = Duration::seconds(1);
    params.kernel.canonical_order = true;
    params.kernel.wide_windows = wide;
    if (threads > 0) {
      params.kernel.use_parallel_kernel = true;
      params.kernel.threads = threads;
    }
    auto tank = std::make_unique<scenario::TankScenario>(params);
    state.ResumeTiming();
    tank->run_for(Duration::seconds(kSimSeconds));
    state.PauseTiming();
    // Kernel telemetry: how many barrier windows the run executed, how wide
    // they were, and where the wall time went. The serial-fraction counter
    // is the measured Amdahl bound of this configuration.
    if (sim::ParallelKernel* kernel = tank->system().kernel()) {
      const sim::ParallelKernelStats& ks = kernel->stats();
      state.counters["windows"] = static_cast<double>(ks.windows);
      state.counters["mean_window_us"] = ks.mean_window_width_us();
      state.counters["max_window_us"] =
          ks.window_width_max.to_seconds() * 1e6;
      state.counters["windows_cut_world"] =
          static_cast<double>(ks.windows_cut_world);
      state.counters["barrier_wait_ms"] =
          static_cast<double>(ks.barrier_wait_ns) * 1e-6;
      state.counters["serial_fraction"] = ks.serial_fraction();
      state.counters["fanout_batches"] =
          static_cast<double>(ks.fanout_batches);
      state.counters["fanout_receivers"] =
          static_cast<double>(ks.fanout_receivers);
    }
    tank.reset();  // teardown of N motes stays outside the measurement
    state.ResumeTiming();
  }
  state.counters["sim_sps"] = benchmark::Counter(
      kSimSeconds * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScalingTank)
    ->ArgsProduct({{10000, 50000, 100000}, {0, 1, 2, 4, 8}, {1}})
    // One narrow-window row: the global-min-airtime baseline the wide
    // planner's window count is compared against.
    ->Args({50000, 2, 0})
    ->ArgNames({"n", "threads", "wide"})
    ->UseRealTime()
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_TankScenarioSecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    scenario::TankScenarioParams params;
    params.cols = 12;
    params.speed_hops_per_s = 0.2;
    scenario::TankScenario scenario(params);
    state.ResumeTiming();
    scenario.run_for(Duration::seconds(1));
  }
}
BENCHMARK(BM_TankScenarioSecond);

/// Console output plus machine-readable {config, seed, metric, value} rows
/// (the shared BENCH_*.json format; seed is 0 — micro-benchmarks are not
/// seeded experiments). Enabled by ET_BENCH_JSON_DIR, same as the sweeps.
class RowReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      rows_.add(run.benchmark_name(), 0, "cpu_time_ns",
                run.GetAdjustedCPUTime());
      rows_.add(run.benchmark_name(), 0, "real_time_ns",
                run.GetAdjustedRealTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        rows_.add(run.benchmark_name(), 0, "items_per_second",
                  static_cast<double>(items->second));
      }
      // Kernel telemetry counters (BM_ScalingTank): one row each, so the
      // window/barrier/serial-fraction trajectory survives in the JSON.
      static constexpr const char* kKernelCounters[] = {
          "windows",          "mean_window_us",  "max_window_us",
          "windows_cut_world", "barrier_wait_ms", "serial_fraction",
          "fanout_batches",   "fanout_receivers"};
      for (const char* counter : kKernelCounters) {
        const auto it = run.counters.find(counter);
        if (it != run.counters.end()) {
          rows_.add(run.benchmark_name(), 0, counter,
                    static_cast<double>(it->second));
        }
      }
      const auto sps = run.counters.find("sim_sps");
      if (sps != run.counters.end()) {
        const std::string name = run.benchmark_name();
        rows_.add(name, 0, "sim_seconds_per_second",
                  static_cast<double>(sps->second));
        // threads:0 is the serial oracle baseline for its world size; every
        // later threads:k run of the same size gets a speedup row.
        const auto pos = name.find("threads:");
        if (pos == std::string::npos) continue;
        const std::string size_key = name.substr(0, pos);
        const bool is_serial = name.compare(pos + 8, 2, "0/") == 0 ||
                               name.compare(pos + 8, std::string::npos, "0") == 0;
        if (is_serial) {
          serial_rate_[size_key] = static_cast<double>(sps->second);
        } else if (const auto it = serial_rate_.find(size_key);
                   it != serial_rate_.end() && it->second > 0) {
          rows_.add(name, 0, "speedup_vs_serial",
                    static_cast<double>(sps->second) / it->second);
        }
      }
    }
  }

  const et::bench::JsonRows& rows() const { return rows_; }

 private:
  et::bench::JsonRows rows_;
  std::map<std::string, double> serial_rate_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RowReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (const char* dir = std::getenv("ET_BENCH_JSON_DIR")) {
    const std::string path = std::string(dir) + "/BENCH_micro.json";
    if (!reporter.rows().empty() &&
        et::metrics::write_file(path, reporter.rows().render())) {
      std::printf("wrote %s\n", path.c_str());
    }
  }
  return 0;
}
