/// Baseline comparison — EnviroTrack vs direct centralized reporting.
///
/// Not a paper figure; quantifies the architectural claim behind the whole
/// middleware: in-network aggregation through context labels beats
/// streaming every raw detection to a base station. One target crosses a
/// 3 x 14 strip at two speeds; both systems use the same radio, the same
/// field, the same report cadence. Compared: channel utilization, bits on
/// air, per-node energy, and the tracking error of what the base station
/// ends up knowing.
///
/// Expected shape: the baseline's traffic and energy are several times the
/// middleware's (every sensing mote sends end-to-end, every hop relays),
/// while tracking error is comparable — the aggregation itself loses
/// nothing, it just happens in the wrong place.

#include <limits>

#include "baseline/direct_reporting.hpp"
#include "bench/bench_util.hpp"
#include "metrics/energy.hpp"
#include "scenario/tank.hpp"

namespace {

using namespace et;
using namespace et::scenario;

struct Row {
  double util_pct = 0;
  double kbits = 0;
  double joules = 0;
  /// NaN when the base station never heard a single report — a run where
  /// tracking failed completely must not print as a zero-error one.
  double mean_error = std::numeric_limits<double>::quiet_NaN();
};

Row run_envirotrack(double kmh, int seeds) {
  Row row;
  double err_sum = 0;
  int err_n = 0;
  for (int i = 0; i < seeds; ++i) {
    TankScenarioParams params;
    params.rows = 3;
    params.cols = 14;
    params.sensing_radius = 1.2;
    params.speed_hops_per_s = kmh_to_hops_per_s(kmh);
    params.radio.loss_probability = 0.05;
    params.report_period = Duration::seconds(2);
    params.seed = 600 + i;
    TankScenario scenario(params);
    const TankRunResult result = scenario.run();
    row.util_pct += result.channel.link_utilization_pct;
    row.kbits += static_cast<double>(result.medium.bits_sent) / 1000.0;
    row.joules += metrics::measure_energy(scenario.system()).totals.total();
    for (const auto& p : result.track) {
      err_sum += p.error;
      ++err_n;
    }
  }
  row.util_pct /= seeds;
  row.kbits /= seeds;
  row.joules /= seeds;
  row.mean_error = err_n ? err_sum / err_n
                       : std::numeric_limits<double>::quiet_NaN();
  return row;
}

Row run_baseline(double kmh, int seeds) {
  Row row;
  double err_sum = 0;
  int err_n = 0;
  for (int i = 0; i < seeds; ++i) {
    sim::Simulator sim(600 + i);
    env::Environment environment(sim.make_rng("env"));
    const env::Field field = env::Field::grid(3, 14);
    const double speed = kmh_to_hops_per_s(kmh);
    env::Target tank;
    tank.type = "tracker";
    tank.trajectory = std::make_unique<env::LinearTrajectory>(
        Vec2{-1.7, 0.5}, Vec2{14.7, 0.5}, speed);
    tank.radius = env::RadiusProfile::constant(1.2);
    tank.emissions["magnetic"] = 40.0;
    const TargetId target = environment.add_target(std::move(tank));

    radio::RadioConfig radio;
    radio.loss_probability = 0.05;
    baseline::DirectReportingConfig config;
    config.report_period = Duration::millis(700);  // = EnviroTrack members
    baseline::DirectReportingSystem system(sim, environment, field,
                                           "tracker", radio, config);

    const Duration span = Duration::seconds(16.4 / speed + 3.0);
    // Sample tracking error every 2 s (the EnviroTrack report cadence).
    const int samples = static_cast<int>(span.to_seconds() / 2.0);
    for (int s = 0; s < samples; ++s) {
      sim.run_for(Duration::seconds(2));
      const Vec2 truth =
          environment.target(target).position_at(sim.now());
      if (!environment.target(target).active_at(sim.now())) continue;
      if (auto estimate = system.nearest_track_estimate(truth)) {
        err_sum += distance(*estimate, truth);
        ++err_n;
      }
    }
    const Duration elapsed = sim.now() - Time::origin();
    row.util_pct +=
        100.0 * system.medium().stats().link_utilization(elapsed, 50'000.0);
    row.kbits +=
        static_cast<double>(system.medium().stats().bits_sent) / 1000.0;
    // Energy from the same model: per-endpoint counters + listen time.
    metrics::EnergyModel model;
    double joules = 0.0;
    for (std::size_t n = 0; n < field.size(); ++n) {
      const auto& ep = system.medium().endpoint_stats(NodeId{n});
      joules += ep.bits_sent * model.tx_joules_per_bit +
                ep.bits_received * model.rx_joules_per_bit +
                elapsed.to_seconds() * (model.listen_watts + model.idle_watts);
    }
    row.joules += joules;
  }
  row.util_pct /= seeds;
  row.kbits /= seeds;
  row.joules /= seeds;
  row.mean_error = err_n ? err_sum / err_n
                       : std::numeric_limits<double>::quiet_NaN();
  return row;
}

void print_row(const char* name, const Row& row) {
  std::printf("  %-28s  %6.2f%%  %8.1f  %8.1f  %8.2f\n", name, row.util_pct,
              row.kbits, row.joules, row.mean_error);
}

}  // namespace

int main() {
  bench::print_header(
      "Baseline: EnviroTrack vs direct centralized reporting",
      "architectural comparison (not a paper figure)");
  const int seeds = bench::seeds_per_point(3);
  std::printf("(tank crossing 3 x 14 grid, 5%% loss, %d seeds)\n", seeds);

  for (double kmh : {kTankSlowKmh, kTankFastKmh}) {
    std::printf("\n  target speed %.0f km/hr\n", kmh);
    std::printf("  %-28s  %7s  %8s  %8s  %8s\n", "architecture", "util",
                "kbits", "joules", "err");
    std::printf("  %-28s  %7s  %8s  %8s  %8s\n",
                "----------------------------", "-------", "--------",
                "--------", "--------");
    print_row("EnviroTrack (aggregated)", run_envirotrack(kmh, seeds));
    print_row("direct reporting (raw)", run_baseline(kmh, seeds));
  }

  std::printf(
      "\n  expected: several-fold more bits/energy for direct reporting at\n"
      "  comparable tracking error.\n");
  return 0;
}
