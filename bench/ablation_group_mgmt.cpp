/// Ablation bench — group-management design choices (DESIGN.md).
///
/// Not a paper figure. Quantifies what each §5.2 mechanism buys on a
/// common workload (one target crossing a 14-hop strip at 50 km/hr,
/// moderate loss): labels created (1 = perfect coherence), handover
/// success, channel load, and deployment energy.
///
/// Variants: the full protocol; weight-based spurious-label suppression
/// off; wait timer shorter than receive timer (violating the §6.2 rule);
/// relinquish off (takeover-only); heartbeat transmit power cut to the
/// sensing radius, without and with perimeter flooding (h = 2).

#include <iterator>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/sweep_runner.hpp"
#include "metrics/energy.hpp"
#include "scenario/tank.hpp"

namespace {

using namespace et;
using namespace et::scenario;

struct Row {
  double labels = 0;
  double success_pct = 0;
  double util_pct = 0;
  double millijoules = 0;
  double detect_s = 0;
};

Row measure(const core::GroupConfig& group, int seeds,
            double duty_awake = 1.0) {
  Row row;
  std::uint64_t ok = 0;
  std::uint64_t fail = 0;
  for (int i = 0; i < seeds; ++i) {
    TankScenarioParams params;
    params.rows = 3;
    params.cols = 14;
    params.sensing_radius = 1.0;
    params.speed_hops_per_s = kmh_to_hops_per_s(kTankFastKmh);
    params.radio.loss_probability = 0.05;
    params.group = group;
    params.duty_cycle_awake_fraction = duty_awake;
    params.base_station.reset();
    params.seed = 400 + i;

    TankScenario scenario(params);
    const TankRunResult result = scenario.run();
    row.labels += static_cast<double>(result.tracking.distinct_labels);
    ok += result.tracking.successful_handovers;
    fail += result.tracking.failed_handovers;
    row.util_pct += result.channel.link_utilization_pct;
    row.millijoules +=
        metrics::measure_energy(scenario.system()).totals.total() * 1e3;
    if (result.tracking.detected()) {
      row.detect_s += result.tracking.detection_latency.to_seconds();
    }
  }
  row.labels /= seeds;
  row.util_pct /= seeds;
  row.millijoules /= seeds;
  row.detect_s /= seeds;
  row.success_pct = (ok + fail) == 0
                        ? 100.0
                        : 100.0 * static_cast<double>(ok) /
                              static_cast<double>(ok + fail);
  return row;
}

void print_row(const char* name, const Row& row) {
  std::printf("  %-40s  %6.1f  %7.1f%%  %6.2f%%  %8.1f  %6.2f\n", name,
              row.labels, row.success_pct, row.util_pct, row.millijoules,
              row.detect_s);
}

}  // namespace

int main() {
  bench::print_header("Ablation: group-management design choices",
                      "design-choice ablations called out in DESIGN.md");
  const int seeds = bench::seeds_per_point(3);
  std::printf("(tank at 50 km/hr, 5%% loss, %d seeds per row, "
              "%u sweep threads)\n", seeds, bench::sweep_threads());
  std::printf("\n  %-40s  %6s  %8s  %7s  %8s  %6s\n", "variant", "labels",
              "handover", "util", "mJ", "det(s)");
  std::printf("  %-40s  %6s  %8s  %7s  %8s  %6s\n",
              "----------------------------------------", "------",
              "--------", "-------", "--------", "------");

  core::GroupConfig base;

  core::GroupConfig no_suppress = base;
  no_suppress.weight_suppression_enabled = false;

  core::GroupConfig bad_wait = base;
  bad_wait.wait_timer_factor = 0.5;  // violates wait > receive

  core::GroupConfig takeover_only = base;
  takeover_only.relinquish_enabled = false;

  core::GroupConfig short_range = base;
  short_range.heartbeat_range = 1.0;
  short_range.heartbeat_period = Duration::seconds(3);

  core::GroupConfig flooded = short_range;
  flooded.perimeter_hops = 2;

  struct Variant {
    const char* name;
    core::GroupConfig group;
    double duty_awake = 1.0;
  };
  const Variant variants[] = {
      {"full protocol (paper settings)", base},
      {"no weight suppression", no_suppress},
      {"wait timer < receive timer", bad_wait},
      {"takeover only (no relinquish)", takeover_only},
      {"HB power = sensing radius, h = 0", short_range},
      {"HB power = sensing radius, h = 2", flooded},
      {"duty cycling, 30% awake (extension)", base, 0.3},
  };

  // Each variant's seeded runs are independent of every other's; measure
  // them all in parallel and print rows in table order.
  const std::vector<Row> rows = bench::run_sweep<Row>(
      std::size(variants), [&](std::size_t job) {
        return measure(variants[job].group, seeds, variants[job].duty_awake);
      });
  for (std::size_t i = 0; i < std::size(variants); ++i) {
    print_row(variants[i].name, rows[i]);
  }

  std::printf(
      "\n  expectations: the full protocol keeps labels at 1.0 and\n"
      "  handover at ~100%%; broken timers/power fork labels; perimeter\n"
      "  flooding (h=2) repairs short-range heartbeats at some extra\n"
      "  traffic and energy.\n");
  return 0;
}
