/// Table 1 — "Communication Performance Data".
///
/// Measured %-lost leader heartbeats, %-lost member report messages, and
/// average useful link utilization (total bits sent / 50 kb/s, the paper's
/// worst-case broadcast accounting), for the correct group-management
/// setting (heartbeats propagated past the sensing radius), averaged over
/// three independent runs per speed.
///
/// Paper values:    speed    %HB loss   %Msg loss   %Link util
///                  33 km/hr   7.08       3.05        2.54
///                  50 km/hr  22.69      17.05        2.88
/// Shape to hold: loss grows with target speed while utilization stays a
/// tiny, nearly flat fraction of capacity.

#include "bench/bench_util.hpp"
#include "scenario/tank.hpp"

int main() {
  using namespace et;
  using namespace et::scenario;

  bench::print_header("Table 1: communication performance data",
                      "ICDCS'04 EnviroTrack, Table 1 (§6.1)");
  const int runs = bench::seeds_per_point(3);
  std::printf("(averaged over %d independent runs, like the paper)\n", runs);

  std::printf("\n  %-10s  %-10s  %-10s  %-10s\n", "Speed", "% HB loss",
              "% Msg loss", "% Link Util");
  std::printf("  %-10s  %-10s  %-10s  %-10s\n", "----------", "----------",
              "----------", "----------");

  for (double kmh : {kTankSlowKmh, kTankFastKmh}) {
    TankScenarioParams params;
    params.rows = 3;
    params.cols = 14;
    params.sensing_radius = 1.0;
    params.speed_hops_per_s = kmh_to_hops_per_s(kmh);
    params.group.heartbeat_range = params.sensing_radius + 1.0;  // correct case
    params.seed = 7;
    const auto report = average_channel_report(params, runs);
    std::printf("  %.0f km/hr    %-10.2f  %-10.2f  %-10.2f\n", kmh,
                report.heartbeat_loss_pct, report.report_loss_pct,
                report.link_utilization_pct);
  }

  std::printf("\n  paper:  33 km/hr  7.08  3.05  2.54\n");
  std::printf("          50 km/hr  22.69 17.05 2.88\n");
  return 0;
}
