/// Serve-load bench — query latency of the track-serving tier.
///
/// ROADMAP item 3 measured: the base station as a sharded in-memory
/// service instead of a passive log. Three phases:
///
///  1. *Record*: one tank traverse (3 x 12 grid) with the serving tier
///     attached; the ingest tape (decoded, epoch-fenced reports in ingest
///     order) becomes the replay input.
///  2. *Synthesize*: the tape is replicated across ET_SERVE_TRACKS
///     spatially-offset synthetic labels, interleaved per report — a
///     many-target feed the single-scenario simulator cannot yet produce
///     at this density.
///  3. *Load*: a writer thread replays the synthetic feed through
///     ShardedTrackStore::apply_batch in ingest-sized batches, looping
///     until time is up, while N closed-loop client threads hammer the
///     query API (60% latest, 30% tracks_in_region, 10% history) and
///     timestamp every call.
///
/// Reported per client count: p50/p99/p999 query latency (µs), queries/s,
/// and the concurrent ingest rate. Rows are persisted as
/// {config, seed, metric, value} into BENCH_serve.json (ET_BENCH_JSON_DIR
/// or the working directory). Client counts and latency values are
/// wall-clock measurements and vary with the host; the query *answers* are
/// validated (a snapshot must carry the label it was asked for, and every
/// synthetic label must be served once the feed has cycled) and the bench
/// exits non-zero on any violation.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "metrics/trace.hpp"
#include "scenario/tank.hpp"
#include "serve/ingest.hpp"
#include "serve/track_store.hpp"

namespace {

using namespace et;

using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

int env_int(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Phase 1: one instrumented tank traverse; returns the ingest tape.
std::vector<metrics::DecodedTrack> record_tape(std::uint64_t seed) {
  scenario::TankScenarioParams params;
  // Small field fully inside the base station's comm radius, slow target,
  // fast reports: maximises delivered reports per simulated second.
  params.rows = 3;
  params.cols = 8;
  params.speed_hops_per_s = 0.75;
  params.report_period = Duration::millis(250);
  params.seed = seed;
  scenario::TankScenario scenario(params);

  serve::ShardedTrackStore store;
  serve::IngestConfig ingest_config;
  ingest_config.record_tape = true;
  serve::TrackIngest ingest(scenario.system(), NodeId{0}, store,
                            ingest_config);
  scenario.run();
  ingest.flush();
  std::printf("  recorded: %llu reports, %llu stale-fenced, %llu batches, "
              "%llu labels in store\n",
              static_cast<unsigned long long>(ingest.stats().reports_stored),
              static_cast<unsigned long long>(ingest.stats().stale_discarded),
              static_cast<unsigned long long>(ingest.stats().batches_flushed),
              static_cast<unsigned long long>(store.stats().labels));
  return ingest.tape();
}

/// Phase 2: replicate the tape across `tracks` spatially-offset labels,
/// interleaving the replicas per report (a dense multi-target feed).
std::vector<metrics::DecodedTrack> synthesize(
    const std::vector<metrics::DecodedTrack>& tape, int tracks) {
  std::vector<metrics::DecodedTrack> feed;
  feed.reserve(tape.size() * static_cast<std::size_t>(tracks));
  for (const metrics::DecodedTrack& report : tape) {
    for (int k = 0; k < tracks; ++k) {
      metrics::DecodedTrack clone = report;
      // Distinct label space per replica: bump the creator-node half of
      // the id — preserves distinctness of the original labels within one
      // replica and never collides across replicas.
      clone.label = LabelId{report.label.value() +
                            (static_cast<std::uint64_t>(k) << 32)};
      clone.position.x += static_cast<double>(k / 8) * 2.0;
      clone.position.y += static_cast<double>(k % 8) * 2.0;
      feed.push_back(clone);
    }
  }
  return feed;
}

struct LoadResult {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double qps = 0.0;
  double ingest_rps = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t bad_answers = 0;
  std::uint64_t labels_served = 0;
};

double percentile(const std::vector<std::uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ns.size() - 1));
  return static_cast<double>(sorted_ns[idx]) / 1000.0;
}

/// Phase 3: one measured point — writer replays `feed`, `clients` reader
/// threads run closed loops against the store for `seconds`.
LoadResult run_load(const std::vector<metrics::DecodedTrack>& feed,
                    int clients, double seconds, Rect query_bounds) {
  serve::StoreConfig store_config;
  store_config.shard_count = 64;
  store_config.ring_capacity = 512;
  serve::ShardedTrackStore store(store_config);

  // Distinct labels in the feed, for the query mix.
  std::vector<LabelId> labels;
  for (const metrics::DecodedTrack& r : feed) labels.push_back(r.label);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ingested{0};

  std::thread writer([&] {
    constexpr std::size_t kBatch = 32;  // = IngestConfig::max_batch
    std::vector<metrics::DecodedTrack> batch;
    batch.reserve(kBatch);
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t i = 0; i < feed.size();) {
        batch.clear();
        for (; i < feed.size() && batch.size() < kBatch; ++i) {
          batch.push_back(feed[i]);
        }
        store.apply_batch(batch);
        ingested.fetch_add(batch.size(), std::memory_order_relaxed);
        if (stop.load(std::memory_order_relaxed)) break;
      }
    }
  });

  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> bad(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> readers;
  const auto started = Clock::now();
  for (int c = 0; c < clients; ++c) {
    readers.emplace_back([&, c] {
      std::mt19937_64 rng(0x5eed5eedull + static_cast<std::uint64_t>(c));
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(1u << 20);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t roll = rng() % 100;
        const LabelId label = labels[rng() % labels.size()];
        const auto t0 = Clock::now();
        if (roll < 60) {
          const auto snap = store.latest(label);
          if (snap && snap->label != label) bad[c]++;
        } else if (roll < 90) {
          const double x = query_bounds.min.x +
                           static_cast<double>(rng() % 97) / 96.0 *
                               query_bounds.width();
          const double y = query_bounds.min.y +
                           static_cast<double>(rng() % 97) / 96.0 *
                               query_bounds.height();
          const Rect rect{{x - 2.0, y - 2.0}, {x + 2.0, y + 2.0}};
          const auto in_region = store.tracks_in_region(rect);
          for (const serve::TrackSnapshot& s : in_region) {
            if (!rect.contains(s.position)) bad[c]++;
          }
        } else {
          const auto points = store.history(label, Duration::seconds(2));
          for (const serve::TrackSnapshot& p : points) {
            if (p.label != label) bad[c]++;
          }
        }
        const auto t1 = Clock::now();
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  writer.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - started).count();

  std::vector<std::uint64_t> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  LoadResult result;
  result.queries = all.size();
  result.p50_us = percentile(all, 0.50);
  result.p99_us = percentile(all, 0.99);
  result.p999_us = percentile(all, 0.999);
  result.qps = static_cast<double>(all.size()) / elapsed;
  result.ingest_rps =
      static_cast<double>(ingested.load(std::memory_order_relaxed)) / elapsed;
  for (const std::uint64_t b : bad) result.bad_answers += b;
  result.labels_served = store.stats().labels;
  return result;
}

}  // namespace

int main() {
  et::bench::print_header(
      "Serve load: track-serving tier query latency",
      "ROADMAP item 3 (base station -> sharded service); "
      "arXiv 2407.00045 middleware architecture");

  const std::uint64_t seed = 42;
  const int tracks = env_int("ET_SERVE_TRACKS", 64);
  const double seconds = env_double("ET_SERVE_SECONDS", 1.0);

  const std::vector<metrics::DecodedTrack> tape = record_tape(seed);
  if (tape.empty()) {
    std::fprintf(stderr, "FAIL: recorded tape is empty — the tank run "
                         "delivered no track reports\n");
    return 1;
  }
  const std::vector<metrics::DecodedTrack> feed = synthesize(tape, tracks);
  // Synthetic positions span the offset grid; queries cover all of it.
  Rect bounds{{1e9, 1e9}, {-1e9, -1e9}};
  std::size_t expected_labels = 0;
  {
    std::vector<LabelId> distinct;
    for (const metrics::DecodedTrack& r : feed) {
      bounds.min.x = std::min(bounds.min.x, r.position.x);
      bounds.min.y = std::min(bounds.min.y, r.position.y);
      bounds.max.x = std::max(bounds.max.x, r.position.x);
      bounds.max.y = std::max(bounds.max.y, r.position.y);
      distinct.push_back(r.label);
    }
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    expected_labels = distinct.size();
  }
  std::printf("  feed: %zu reports across %zu labels; %.2f s per point\n",
              feed.size(), expected_labels, seconds);

  constexpr int kClientCounts[] = {1, 2, 4, 8};
  std::printf("\n  %7s | %9s %9s %9s | %11s %11s | %7s\n", "clients",
              "p50(us)", "p99(us)", "p999(us)", "queries/s", "ingest/s",
              "labels");
  et::bench::JsonRows rows;
  bool answers_ok = true;
  for (const int clients : kClientCounts) {
    const LoadResult r = run_load(feed, clients, seconds, bounds);
    std::printf("  %7d | %9.2f %9.2f %9.2f | %11.0f %11.0f | %7llu\n",
                clients, r.p50_us, r.p99_us, r.p999_us, r.qps, r.ingest_rps,
                static_cast<unsigned long long>(r.labels_served));
    if (r.bad_answers != 0 || r.labels_served != expected_labels) {
      answers_ok = false;
      std::fprintf(stderr,
                   "FAIL: clients=%d bad_answers=%llu labels=%llu "
                   "(expected %zu)\n",
                   clients, static_cast<unsigned long long>(r.bad_answers),
                   static_cast<unsigned long long>(r.labels_served),
                   expected_labels);
    }
    char config[32];
    std::snprintf(config, sizeof(config), "clients=%d", clients);
    rows.add(config, seed, "p50_us", r.p50_us);
    rows.add(config, seed, "p99_us", r.p99_us);
    rows.add(config, seed, "p999_us", r.p999_us);
    rows.add(config, seed, "qps", r.qps);
    rows.add(config, seed, "ingest_rps", r.ingest_rps);
  }

  const char* dir = std::getenv("ET_BENCH_JSON_DIR");
  const std::string path =
      std::string(dir && *dir ? dir : ".") + "/BENCH_serve.json";
  if (et::metrics::write_file(path, rows.render())) {
    std::printf("\n  wrote %s\n", path.c_str());
  }

  if (!answers_ok) return 1;
  std::printf("\n  all query answers validated (label match, region "
              "containment, full label coverage)\n");
  return 0;
}
