#pragma once

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

/// Thread-pool fan-out for parameter sweeps.
///
/// Every figure/ablation bench reduces to a list of independent
/// (config, seed) simulation points. Each point is a deterministic,
/// single-threaded Simulator run sharing no mutable state with any other
/// (the logger's clock hook is thread-local), so the whole sweep
/// parallelises trivially: job i's result depends only on i, never on
/// scheduling, and the output is bit-identical to a serial run.
namespace et::bench {

/// Worker count: ET_BENCH_THREADS overrides (1 = serial, handy for
/// debugging or timing a single run); defaults to the hardware threads.
inline unsigned sweep_threads() {
  if (const char* env = std::getenv("ET_BENCH_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

/// Runs `count` independent jobs across hardware threads and returns their
/// results in job order. `job` is invoked as `Result(std::size_t index)`
/// concurrently from multiple threads — it must build its own Simulator
/// (and anything else with mutable state) per call.
template <typename Result, typename Job>
std::vector<Result> run_sweep(std::size_t count, Job job) {
  std::vector<Result> results(count);
  const std::size_t threads =
      std::min<std::size_t>(sweep_threads(), count > 0 ? count : 1);
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = job(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        results[i] = job(i);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  return results;
}

}  // namespace et::bench
