/// Figure 5 — "Effect of Timers on Maximum Trackable Speed".
///
/// Maximum trackable target speed (hops/s) as a function of the leader
/// heartbeat period, with receive/wait timers at the paper's 2.1x / 4.2x
/// ratios, communication radius fixed at 6 grids, sensing radius 1 and 2
/// grids. Handover mode is the worst case: the departing leader goes
/// silent and the group must recover via receive-timer takeover. A
/// "relinquish" curve (explicit handoff) and a cross-traffic variant are
/// included.
///
/// Paper shape: peak of 1-3 hops/s around heartbeat periods 0.25-0.5 s;
/// larger sensing radii track faster; smaller periods *decrease* the
/// trackable speed because mote CPUs saturate (the shape survives heavy
/// cross traffic, ruling bandwidth out as the bottleneck).

#include <cstdlib>
#include <iterator>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/sweep_runner.hpp"
#include "metrics/trace.hpp"
#include "scenario/speed_search.hpp"

namespace {

using namespace et;
using namespace et::scenario;

/// Mote CPU calibrated so the processor — not the channel — saturates
/// first at small heartbeat periods, as the paper's cross-traffic control
/// experiment established for the 4 MHz ATmega testbed: a received frame
/// costs ~200 ms of protocol-stack processing, a timer task ~100 ms.
node::CpuConfig slow_mote_cpu() {
  node::CpuConfig cpu;
  cpu.rx_task_cost = Duration::millis(200);
  cpu.timer_task_cost = Duration::millis(100);
  cpu.queue_capacity = 12;
  return cpu;
}

SpeedSearchParams base_search(double sensing_radius, bool relinquish,
                              bool cross_traffic, int seeds) {
  SpeedSearchParams search;
  search.base.cols = 20;
  search.base.rows = 2 * static_cast<std::size_t>(sensing_radius) + 1;
  search.base.sensing_radius = sensing_radius;
  search.base.track_y = sensing_radius - 0.5;
  search.base.comm_radius = 6.0;
  search.base.cpu = slow_mote_cpu();
  search.base.group.wait_radius = 2.0 * sensing_radius + 2.5;
  search.base.group.relinquish_enabled = relinquish;
  search.base.base_station.reset();
  if (cross_traffic) {
    CrossTrafficConfig noise;
    noise.senders = 10;
    noise.period = Duration::millis(150);
    noise.payload_bytes = 30;
    search.base.cross_traffic = noise;
  }
  search.lo = 0.05;
  search.hi = 6.0;
  search.resolution = 0.15;
  search.seeds = seeds;
  // The paper's trackability criterion is context-label coherence; the
  // target must also actually be tracked a meaningful share of the run.
  search.min_tracked_fraction = 0.3;
  return search;
}

constexpr double kPeriods[] = {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0};
constexpr std::size_t kPeriodCount = std::size(kPeriods);

struct CurveSpec {
  const char* name;
  double sensing_radius;
  bool relinquish;
  bool cross_traffic;
};

void print_curve(const CurveSpec& spec, const std::vector<double>& speeds) {
  std::printf("\n  %s\n", spec.name);
  std::printf("  HB period (s):   ");
  for (double p : kPeriods) std::printf("%7.3f", p);
  std::printf("\n  max speed (h/s): ");
  for (double speed : speeds) std::printf("%7.2f", speed);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header("Figure 5: effect of timers on max trackable speed",
                      "ICDCS'04 EnviroTrack, Fig. 5 (§6.2)");
  const int seeds = bench::seeds_per_point(3);
  std::printf("(receive timer = 2.1 x HB, wait timer = 4.2 x HB, CR = 6; "
              "%d runs per probe, %u sweep threads)\n",
              seeds, bench::sweep_threads());

  const CurveSpec curves[] = {
      {"worst-case takeover, sensing radius 1", 1.0, false, false},
      {"worst-case takeover, sensing radius 2", 2.0, false, false},
      {"relinquish optimisation, sensing radius 1", 1.0, true, false},
      {"worst-case takeover, SR 1, heavy cross traffic", 1.0, false, true},
  };
  constexpr std::size_t kCurveCount = std::size(curves);

  // Every (curve, heartbeat period) point is an independent bisection
  // search; fan them all across the thread pool at once.
  const std::vector<double> flat = bench::run_sweep<double>(
      kCurveCount * kPeriodCount, [&](std::size_t job) {
        const CurveSpec& spec = curves[job / kPeriodCount];
        const double period = kPeriods[job % kPeriodCount];
        SpeedSearchParams search = base_search(
            spec.sensing_radius, spec.relinquish, spec.cross_traffic, seeds);
        search.base.group.heartbeat_period = Duration::seconds(period);
        return find_max_trackable_speed(search);
      });

  auto curve_of = [&](std::size_t c) {
    return std::vector<double>(flat.begin() + c * kPeriodCount,
                               flat.begin() + (c + 1) * kPeriodCount);
  };
  const auto sr1 = curve_of(0);
  const auto sr2 = curve_of(1);
  const auto relinquish = curve_of(2);
  const auto noisy = curve_of(3);
  print_curve(curves[0], sr1);
  print_curve(curves[1], sr2);
  print_curve(curves[2], relinquish);
  print_curve(curves[3], noisy);

  if (const char* dir = std::getenv("ET_BENCH_CSV_DIR")) {
    const std::string path = std::string(dir) + "/fig5_timers.csv";
    const std::string csv = et::metrics::series_csv(
        "hb_period_s", {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0},
        {{"takeover_sr1", sr1},
         {"takeover_sr2", sr2},
         {"relinquish_sr1", relinquish},
         {"cross_traffic_sr1", noisy}});
    if (et::metrics::write_file(path, csv)) {
      std::printf("\n  wrote %s\n", path.c_str());
    }
  }

  std::printf(
      "\n  paper shape: peak 1-3 hops/s near HB 0.25-0.5 s; decline at\n"
      "  smaller periods (CPU overload); larger events faster; relinquish\n"
      "  roughly flat; cross traffic leaves the shape unchanged.\n");
  return 0;
}
